#include "lsh/signature_store.h"

#include <cassert>

#include "common/simd_ops.h"
#include "lsh/signature_serialization.h"

namespace bayeslsh {

namespace {

// Names the store kind in serialization error messages.
const char* KindName(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kSrpBits:
      return "SRP bits";
    case SignatureKind::kMinwiseInts:
      return "minwise ints";
    case SignatureKind::kBbitPacked:
      return "b-bit packed";
    case SignatureKind::kIcwsInts:
      return "ICWS ints";
    case SignatureKind::kPstableInts:
      return "p-stable ints";
    case SignatureKind::kKlshBits:
      return "KLSH bits";
  }
  return "unknown";
}

}  // namespace

BitSignatureStore::BitSignatureStore(const Dataset* data, SrpHasher hasher)
    : BitSignatureStore(data, std::make_shared<SrpChunkHasher>(hasher)) {}

BitSignatureStore::BitSignatureStore(
    const Dataset* data, std::shared_ptr<const WordChunkHasher> hasher)
    : data_(data), hasher_(std::move(hasher)), words_(data->num_vectors()) {}

uint64_t BitSignatureStore::EnsureBitsUncounted(uint32_t row,
                                                uint32_t n_bits) {
  auto& w = words_[row];
  const uint32_t need = WordsForBits(n_bits);
  if (HeldWords(row) >= need) return 0;
  assert(!frozen());  // A frozen store must already cover every request.
  // Growing past an mmap view first materializes the mapped prefix into an
  // owned copy — uncounted, since the writer accounted those hashes.
  if (!views_.empty() && views_[row].second > w.size()) {
    w.assign(views_[row].first, views_[row].first + views_[row].second);
  }
  const uint32_t have = static_cast<uint32_t>(w.size());
  const SparseVectorView v = data_->Row(row);
  w.reserve(need);
  for (uint32_t c = have; c < need; ++c) {
    w.push_back(hasher_->HashChunk(v, row, c));
  }
  return static_cast<uint64_t>(need - have) * kBitsPerWord;
}

void BitSignatureStore::EnsureBits(uint32_t row, uint32_t n_bits) {
  AddBitsComputed(EnsureBitsUncounted(row, n_bits));
}

void BitSignatureStore::EnsureAllBits(uint32_t n_bits) {
  for (uint32_t i = 0; i < num_rows(); ++i) EnsureBits(i, n_bits);
}

uint32_t BitSignatureStore::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                       uint32_t to) {
  assert(from <= to);
  if (frozen()) return MatchCountReadOnly(a, b, from, to);
  EnsureBits(a, to);
  EnsureBits(b, to);
  return MatchingBits(Words(a), Words(b), from, to);
}

uint32_t BitSignatureStore::MatchAgainstQuery(uint32_t row,
                                              const uint64_t* query_words,
                                              uint32_t from, uint32_t to) {
  assert(from <= to);
  if (frozen()) {
    assert(NumBits(row) >= to);
    return MatchingBits(query_words, Words(row), from, to);
  }
  std::lock_guard<std::mutex> lock(growth_mu_);
  AddBitsComputed(EnsureBitsUncounted(row, to));
  return MatchingBits(query_words, Words(row), from, to);
}

uint32_t BitSignatureStore::MatchCountReadOnly(uint32_t a, uint32_t b,
                                               uint32_t from,
                                               uint32_t to) const {
  assert(from <= to);
  assert(NumBits(a) >= to && NumBits(b) >= to);
  return MatchingBits(Words(a), Words(b), from, to);
}

void BitSignatureStore::Save(std::ostream& out, bool align_blob) const {
  std::vector<internal::RowSpan<uint64_t>> rows;
  rows.reserve(num_rows());
  for (uint32_t r = 0; r < num_rows(); ++r) {
    rows.emplace_back(Words(r), HeldWords(r));
  }
  internal::SaveSignatureRows(out, kind(), 0, rows, bits_computed(),
                              align_blob);
}

void BitSignatureStore::Load(std::istream& in, bool padded) {
  assert(!frozen());
  uint64_t computed = 0;
  internal::LoadSignatureRows(in, kind(), 0, num_rows(),
                              /*length_multiple=*/1, KindName(kind()),
                              &words_, &computed, padded);
  views_.clear();
  bits_computed_.store(computed, std::memory_order_relaxed);
}

void BitSignatureStore::LoadViews(std::istream& in, const char* mapped_base,
                                  size_t mapped_size) {
  assert(!frozen());
  uint64_t computed = 0;
  std::vector<internal::RowSpan<uint64_t>> views;
  internal::LoadSignatureRowViews(in, mapped_base, mapped_size, kind(), 0,
                                  num_rows(),
                                  /*length_multiple=*/1, KindName(kind()),
                                  &views, &computed);
  views_ = std::move(views);
  for (auto& w : words_) w.clear();
  bits_computed_.store(computed, std::memory_order_relaxed);
}

void BitSignatureStore::CopyRowsFrom(const BitSignatureStore& other) {
  assert(other.num_rows() == num_rows() && !frozen());
  for (uint32_t r = 0; r < num_rows(); ++r) {
    const uint32_t other_len = other.HeldWords(r);
    if (other_len <= HeldWords(r)) continue;
    if (!other.views_.empty() && other.views_[r].second == other_len) {
      // Borrow the mmap view instead of copying: the source index (and
      // thus its mapping) outlives this store per the warm-start contract.
      if (views_.empty()) views_.assign(num_rows(), {nullptr, 0});
      views_[r] = other.views_[r];
    } else {
      words_[r] = other.words_[r];
    }
  }
}

IntSignatureStore::IntSignatureStore(const Dataset* data,
                                     MinwiseHasher hasher)
    : IntSignatureStore(data, std::make_shared<MinwiseChunkHasher>(hasher)) {}

IntSignatureStore::IntSignatureStore(
    const Dataset* data, std::shared_ptr<const IntChunkHasher> hasher)
    : data_(data), hasher_(std::move(hasher)), hashes_(data->num_vectors()) {}

uint64_t IntSignatureStore::EnsureHashesUncounted(uint32_t row,
                                                  uint32_t n_hashes) {
  auto& h = hashes_[row];
  // Round up to whole chunks (the hasher's growth quantum).
  const uint32_t chunk_ints = hasher_->chunk_ints();
  const uint32_t need_chunks = (n_hashes + chunk_ints - 1) / chunk_ints;
  const uint32_t need = need_chunks * chunk_ints;
  if (HeldHashes(row) >= need) return 0;
  assert(!frozen());  // A frozen store must already cover every request.
  // Materialize the mapped prefix before growing past it (see
  // BitSignatureStore::EnsureBitsUncounted).
  if (!views_.empty() && views_[row].second > h.size()) {
    h.assign(views_[row].first, views_[row].first + views_[row].second);
  }
  const uint32_t have = static_cast<uint32_t>(h.size());
  assert(have % chunk_ints == 0);
  const SparseVectorView v = data_->Row(row);
  h.resize(need);
  for (uint32_t c = have / chunk_ints; c < need_chunks; ++c) {
    hasher_->HashChunk(v, row, c, h.data() + c * chunk_ints);
  }
  return need - have;
}

void IntSignatureStore::EnsureHashes(uint32_t row, uint32_t n_hashes) {
  AddHashesComputed(EnsureHashesUncounted(row, n_hashes));
}

void IntSignatureStore::EnsureAllHashes(uint32_t n_hashes) {
  for (uint32_t i = 0; i < num_rows(); ++i) EnsureHashes(i, n_hashes);
}

namespace {

inline uint32_t CountIntMatches(const uint32_t* ha, const uint32_t* hb,
                                uint32_t from, uint32_t to) {
  return simd::CountEqualU32(ha + from, hb + from, to - from);
}

}  // namespace

uint32_t IntSignatureStore::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                       uint32_t to) {
  assert(from <= to);
  if (frozen()) return MatchCountReadOnly(a, b, from, to);
  EnsureHashes(a, to);
  EnsureHashes(b, to);
  return CountIntMatches(Hashes(a), Hashes(b), from, to);
}

uint32_t IntSignatureStore::MatchAgainstQuery(uint32_t row,
                                              const uint32_t* query_hashes,
                                              uint32_t from, uint32_t to) {
  assert(from <= to);
  if (frozen()) {
    assert(NumHashes(row) >= to);
    return CountIntMatches(Hashes(row), query_hashes, from, to);
  }
  std::lock_guard<std::mutex> lock(growth_mu_);
  AddHashesComputed(EnsureHashesUncounted(row, to));
  return CountIntMatches(Hashes(row), query_hashes, from, to);
}

uint32_t IntSignatureStore::MatchCountReadOnly(uint32_t a, uint32_t b,
                                               uint32_t from,
                                               uint32_t to) const {
  assert(from <= to);
  assert(NumHashes(a) >= to && NumHashes(b) >= to);
  return CountIntMatches(Hashes(a), Hashes(b), from, to);
}

void IntSignatureStore::Save(std::ostream& out, bool align_blob) const {
  std::vector<internal::RowSpan<uint32_t>> rows;
  rows.reserve(num_rows());
  for (uint32_t r = 0; r < num_rows(); ++r) {
    rows.emplace_back(Hashes(r), HeldHashes(r));
  }
  internal::SaveSignatureRows(out, kind(), 0, rows, hashes_computed(),
                              align_blob);
}

void IntSignatureStore::Load(std::istream& in, bool padded) {
  assert(!frozen());
  uint64_t computed = 0;
  internal::LoadSignatureRows(in, kind(), 0, num_rows(),
                              hasher_->chunk_ints(), KindName(kind()),
                              &hashes_, &computed, padded);
  views_.clear();
  hashes_computed_.store(computed, std::memory_order_relaxed);
}

void IntSignatureStore::LoadViews(std::istream& in, const char* mapped_base,
                                  size_t mapped_size) {
  assert(!frozen());
  uint64_t computed = 0;
  std::vector<internal::RowSpan<uint32_t>> views;
  internal::LoadSignatureRowViews(in, mapped_base, mapped_size, kind(), 0,
                                  num_rows(), hasher_->chunk_ints(),
                                  KindName(kind()), &views, &computed);
  views_ = std::move(views);
  for (auto& h : hashes_) h.clear();
  hashes_computed_.store(computed, std::memory_order_relaxed);
}

void IntSignatureStore::CopyRowsFrom(const IntSignatureStore& other) {
  assert(other.num_rows() == num_rows() && !frozen());
  for (uint32_t r = 0; r < num_rows(); ++r) {
    const uint32_t other_len = other.HeldHashes(r);
    if (other_len <= HeldHashes(r)) continue;
    if (!other.views_.empty() && other.views_[r].second == other_len) {
      if (views_.empty()) views_.assign(num_rows(), {nullptr, 0});
      views_[r] = other.views_[r];
    } else {
      hashes_[r] = other.hashes_[r];
    }
  }
}

// --- overflow shards ---

const std::vector<uint64_t>& BitOverflowShard::Row(uint32_t row,
                                                   uint32_t n_bits) {
  auto& w = rows_[row];
  const uint32_t need = WordsForBits(n_bits);
  if (w.size() >= need) return w;
  if (w.empty()) {
    // Seed with the shared store's prefetched words: already computed,
    // so copying adds nothing to the hashing tally.
    const uint32_t base_words = base_->NumBits(row) / kBitsPerWord;
    w.assign(base_->Words(row), base_->Words(row) + base_words);
  }
  const uint32_t have = static_cast<uint32_t>(w.size());
  if (have >= need) return w;
  const SparseVectorView v = base_->data()->Row(row);
  w.reserve(need);
  for (uint32_t c = have; c < need; ++c) {
    w.push_back(base_->hasher().HashChunk(v, row, c));
  }
  bits_computed_ += static_cast<uint64_t>(need - have) * kBitsPerWord;
  return w;
}

const uint64_t* BitOverflowShard::RowWords(uint32_t row, uint32_t n_bits) {
  if (n_bits <= base_->NumBits(row)) return base_->Words(row);
  return Row(row, n_bits).data();
}

void BitOverflowShard::MergeInto(BitSignatureStore* store) {
  assert(store == base_);
  for (auto& [row, words] : rows_) {
    store->AdoptWords(row, std::move(words));
  }
  rows_.clear();
}

uint32_t BitOverflowShard::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                      uint32_t to) {
  assert(from <= to);
  if (to <= base_->NumBits(a) && to <= base_->NumBits(b)) {
    return base_->MatchCountReadOnly(a, b, from, to);
  }
  const std::vector<uint64_t>& wa = Row(a, to);
  const std::vector<uint64_t>& wb = Row(b, to);
  return MatchingBits(wa.data(), wb.data(), from, to);
}

const std::vector<uint32_t>& IntOverflowShard::Row(uint32_t row,
                                                   uint32_t n_hashes) {
  auto& h = rows_[row];
  const uint32_t chunk_ints = base_->hasher().chunk_ints();
  const uint32_t need_chunks = (n_hashes + chunk_ints - 1) / chunk_ints;
  const uint32_t need = need_chunks * chunk_ints;
  if (h.size() >= need) return h;
  if (h.empty()) {
    const uint32_t base_have = base_->NumHashes(row);
    h.assign(base_->Hashes(row), base_->Hashes(row) + base_have);
  }
  const uint32_t have = static_cast<uint32_t>(h.size());
  if (have >= need) return h;
  assert(have % chunk_ints == 0);
  const SparseVectorView v = base_->data()->Row(row);
  h.resize(need);
  for (uint32_t c = have / chunk_ints; c < need_chunks; ++c) {
    base_->hasher().HashChunk(v, row, c, h.data() + c * chunk_ints);
  }
  hashes_computed_ += need - have;
  return h;
}

const uint32_t* IntOverflowShard::RowHashes(uint32_t row, uint32_t n_hashes) {
  if (n_hashes <= base_->NumHashes(row)) return base_->Hashes(row);
  return Row(row, n_hashes).data();
}

void IntOverflowShard::MergeInto(IntSignatureStore* store) {
  assert(store == base_);
  for (auto& [row, hashes] : rows_) {
    store->AdoptHashes(row, std::move(hashes));
  }
  rows_.clear();
}

uint32_t IntOverflowShard::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                      uint32_t to) {
  assert(from <= to);
  if (to <= base_->NumHashes(a) && to <= base_->NumHashes(b)) {
    return base_->MatchCountReadOnly(a, b, from, to);
  }
  const std::vector<uint32_t>& ha = Row(a, to);
  const std::vector<uint32_t>& hb = Row(b, to);
  return CountIntMatches(ha.data(), hb.data(), from, to);
}

}  // namespace bayeslsh
