#include "lsh/signature_store.h"

#include <cassert>

namespace bayeslsh {

BitSignatureStore::BitSignatureStore(const Dataset* data, SrpHasher hasher)
    : data_(data), hasher_(hasher), words_(data->num_vectors()) {}

void BitSignatureStore::EnsureBits(uint32_t row, uint32_t n_bits) {
  auto& w = words_[row];
  const uint32_t have = static_cast<uint32_t>(w.size());
  const uint32_t need = WordsForBits(n_bits);
  if (have >= need) return;
  const SparseVectorView v = data_->Row(row);
  w.reserve(need);
  for (uint32_t c = have; c < need; ++c) {
    w.push_back(hasher_.HashChunk(v, c));
  }
  bits_computed_ += static_cast<uint64_t>(need - have) * kBitsPerWord;
}

void BitSignatureStore::EnsureAllBits(uint32_t n_bits) {
  for (uint32_t i = 0; i < num_rows(); ++i) EnsureBits(i, n_bits);
}

uint32_t BitSignatureStore::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                       uint32_t to) {
  assert(from <= to);
  EnsureBits(a, to);
  EnsureBits(b, to);
  return MatchingBits(words_[a].data(), words_[b].data(), from, to);
}

IntSignatureStore::IntSignatureStore(const Dataset* data,
                                     MinwiseHasher hasher)
    : data_(data), hasher_(hasher), hashes_(data->num_vectors()) {}

void IntSignatureStore::EnsureHashes(uint32_t row, uint32_t n_hashes) {
  auto& h = hashes_[row];
  const uint32_t have = static_cast<uint32_t>(h.size());
  // Round up to whole chunks.
  const uint32_t need_chunks =
      (n_hashes + kMinhashChunkInts - 1) / kMinhashChunkInts;
  const uint32_t need = need_chunks * kMinhashChunkInts;
  if (have >= need) return;
  assert(have % kMinhashChunkInts == 0);
  const SparseVectorView v = data_->Row(row);
  h.resize(need);
  for (uint32_t c = have / kMinhashChunkInts; c < need_chunks; ++c) {
    hasher_.HashChunk(v, c, h.data() + c * kMinhashChunkInts);
  }
  hashes_computed_ += need - have;
}

void IntSignatureStore::EnsureAllHashes(uint32_t n_hashes) {
  for (uint32_t i = 0; i < num_rows(); ++i) EnsureHashes(i, n_hashes);
}

uint32_t IntSignatureStore::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                       uint32_t to) {
  assert(from <= to);
  EnsureHashes(a, to);
  EnsureHashes(b, to);
  const uint32_t* ha = hashes_[a].data();
  const uint32_t* hb = hashes_[b].data();
  uint32_t matches = 0;
  for (uint32_t i = from; i < to; ++i) {
    matches += (ha[i] == hb[i]) ? 1 : 0;
  }
  return matches;
}

}  // namespace bayeslsh
