#include "lsh/bbit_minwise.h"

#include <utility>

namespace bayeslsh {

static_assert(BbitSignatureStore::kChunkHashes % kMinhashChunkInts == 0,
              "b-bit growth quantum must be whole minwise chunks");

BbitSignatureStore::BbitSignatureStore(const Dataset* data,
                                       MinwiseHasher hasher,
                                       uint32_t bits_per_hash)
    : data_(data),
      hasher_(std::move(hasher)),
      bits_per_hash_(bits_per_hash),
      values_per_word_(64 / bits_per_hash),
      words_(data->num_vectors()) {
  assert(IsValidBbitWidth(bits_per_hash));
}

void BbitSignatureStore::EnsureHashes(uint32_t row, uint32_t n_hashes) {
  const uint32_t have = NumHashes(row);
  if (n_hashes <= have) return;
  const uint32_t want =
      (n_hashes + kChunkHashes - 1) / kChunkHashes * kChunkHashes;
  auto& w = words_[row];
  w.resize(want / values_per_word_, 0);

  const SparseVectorView v = data_->Row(row);
  const uint64_t value_mask = (bits_per_hash_ == 32)
                                  ? 0xffffffffULL
                                  : (1ULL << bits_per_hash_) - 1;
  uint32_t scratch[kMinhashChunkInts];
  for (uint32_t j = have; j < want; j += kMinhashChunkInts) {
    hasher_.HashChunk(v, j / kMinhashChunkInts, scratch);
    for (uint32_t i = 0; i < kMinhashChunkInts; ++i) {
      const uint32_t hash_index = j + i;
      const uint64_t value = scratch[i] & value_mask;
      const uint32_t word = hash_index / values_per_word_;
      const uint32_t group = hash_index % values_per_word_;
      w[word] |= value << (group * bits_per_hash_);
    }
  }
  hashes_computed_ += want - have;
}

void BbitSignatureStore::EnsureAllHashes(uint32_t n_hashes) {
  for (uint32_t row = 0; row < num_rows(); ++row) {
    EnsureHashes(row, n_hashes);
  }
}

uint32_t BbitSignatureStore::HashValue(uint32_t row, uint32_t j) const {
  assert(j < NumHashes(row));
  const uint64_t word = words_[row][j / values_per_word_];
  const uint32_t group = j % values_per_word_;
  const uint64_t value_mask = (bits_per_hash_ == 32)
                                  ? 0xffffffffULL
                                  : (1ULL << bits_per_hash_) - 1;
  return static_cast<uint32_t>((word >> (group * bits_per_hash_)) &
                               value_mask);
}

uint32_t BbitSignatureStore::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                        uint32_t to) {
  EnsureHashes(a, to);
  EnsureHashes(b, to);
  return MatchingBbitGroups(words_[a].data(), words_[b].data(), from, to,
                            bits_per_hash_);
}

uint64_t BbitSignatureStore::signature_bytes() const {
  uint64_t words = 0;
  for (const auto& w : words_) words += w.size();
  return words * sizeof(uint64_t);
}

}  // namespace bayeslsh
