#include "lsh/bbit_minwise.h"

#include <utility>

#include "lsh/signature_serialization.h"

namespace bayeslsh {

static_assert(BbitSignatureStore::kChunkHashes % kMinhashChunkInts == 0,
              "b-bit growth quantum must be whole minwise chunks");

void PackBbitValues(const uint32_t* hashes, uint32_t from, uint32_t n,
                    uint32_t bits_per_hash, uint64_t* words) {
  assert(IsValidBbitWidth(bits_per_hash));
  assert(from % kMinhashChunkInts == 0);
  const uint32_t values_per_word = 64 / bits_per_hash;
  const uint64_t value_mask = (bits_per_hash == 32)
                                  ? 0xffffffffULL
                                  : (1ULL << bits_per_hash) - 1;
  for (uint32_t j = from; j < n; ++j) {
    const uint64_t value = hashes[j - from] & value_mask;
    words[j / values_per_word] |=
        value << ((j % values_per_word) * bits_per_hash);
  }
}

BbitSignatureStore::BbitSignatureStore(const Dataset* data,
                                       MinwiseHasher hasher,
                                       uint32_t bits_per_hash)
    : data_(data),
      hasher_(std::move(hasher)),
      bits_per_hash_(bits_per_hash),
      values_per_word_(64 / bits_per_hash),
      words_(data->num_vectors()) {
  assert(IsValidBbitWidth(bits_per_hash));
}

uint64_t BbitSignatureStore::EnsureHashesUncounted(uint32_t row,
                                                   uint32_t n_hashes) {
  if (n_hashes <= NumHashes(row)) return 0;
  assert(!frozen());  // A frozen store must already cover every request.
  auto& w = words_[row];
  // Materialize the mapped prefix before growing past it (see
  // BitSignatureStore::EnsureBitsUncounted).
  if (!views_.empty() && views_[row].second > w.size()) {
    w.assign(views_[row].first, views_[row].first + views_[row].second);
  }
  const uint32_t have =
      static_cast<uint32_t>(w.size()) * values_per_word_;
  const uint32_t want =
      (n_hashes + kChunkHashes - 1) / kChunkHashes * kChunkHashes;
  w.resize(want / values_per_word_, 0);

  const SparseVectorView v = data_->Row(row);
  uint32_t scratch[kMinhashChunkInts];
  for (uint32_t j = have; j < want; j += kMinhashChunkInts) {
    hasher_.HashChunk(v, j / kMinhashChunkInts, scratch);
    PackBbitValues(scratch, j, j + kMinhashChunkInts, bits_per_hash_,
                   w.data());
  }
  return want - have;
}

void BbitSignatureStore::EnsureHashes(uint32_t row, uint32_t n_hashes) {
  AddHashesComputed(EnsureHashesUncounted(row, n_hashes));
}

void BbitSignatureStore::EnsureAllHashes(uint32_t n_hashes) {
  for (uint32_t row = 0; row < num_rows(); ++row) {
    EnsureHashes(row, n_hashes);
  }
}

uint32_t BbitSignatureStore::HashValue(uint32_t row, uint32_t j) const {
  assert(j < NumHashes(row));
  const uint64_t word = Words(row)[j / values_per_word_];
  const uint32_t group = j % values_per_word_;
  const uint64_t value_mask = (bits_per_hash_ == 32)
                                  ? 0xffffffffULL
                                  : (1ULL << bits_per_hash_) - 1;
  return static_cast<uint32_t>((word >> (group * bits_per_hash_)) &
                               value_mask);
}

uint32_t BbitSignatureStore::MatchCount(uint32_t a, uint32_t b, uint32_t from,
                                        uint32_t to) {
  if (frozen()) {
    assert(NumHashes(a) >= to && NumHashes(b) >= to);
    return MatchingBbitGroups(Words(a), Words(b), from, to, bits_per_hash_);
  }
  EnsureHashes(a, to);
  EnsureHashes(b, to);
  return MatchingBbitGroups(Words(a), Words(b), from, to, bits_per_hash_);
}

uint32_t BbitSignatureStore::MatchAgainstQuery(uint32_t row,
                                               const uint64_t* query_words,
                                               uint32_t from, uint32_t to) {
  assert(from <= to);
  if (frozen()) {
    assert(NumHashes(row) >= to);
    return MatchingBbitGroups(Words(row), query_words, from, to,
                              bits_per_hash_);
  }
  std::lock_guard<std::mutex> lock(growth_mu_);
  AddHashesComputed(EnsureHashesUncounted(row, to));
  return MatchingBbitGroups(Words(row), query_words, from, to,
                            bits_per_hash_);
}

uint64_t BbitSignatureStore::signature_bytes() const {
  uint64_t words = 0;
  for (uint32_t r = 0; r < num_rows(); ++r) words += HeldWords(r);
  return words * sizeof(uint64_t);
}

void BbitSignatureStore::Save(std::ostream& out, bool align_blob) const {
  std::vector<internal::RowSpan<uint64_t>> rows;
  rows.reserve(num_rows());
  for (uint32_t r = 0; r < num_rows(); ++r) {
    rows.emplace_back(Words(r), HeldWords(r));
  }
  internal::SaveSignatureRows(out, SignatureKind::kBbitPacked,
                              static_cast<uint8_t>(bits_per_hash_), rows,
                              hashes_computed(), align_blob);
}

void BbitSignatureStore::Load(std::istream& in, bool padded) {
  assert(!frozen());
  // One growth chunk is kChunkHashes values = bits_per_hash_ words.
  uint64_t computed = 0;
  internal::LoadSignatureRows(in, SignatureKind::kBbitPacked,
                              static_cast<uint8_t>(bits_per_hash_),
                              num_rows(), /*length_multiple=*/bits_per_hash_,
                              "b-bit packed", &words_, &computed, padded);
  views_.clear();
  hashes_computed_.store(computed, std::memory_order_relaxed);
}

void BbitSignatureStore::LoadViews(std::istream& in, const char* mapped_base,
                                   size_t mapped_size) {
  assert(!frozen());
  uint64_t computed = 0;
  std::vector<internal::RowSpan<uint64_t>> views;
  internal::LoadSignatureRowViews(in, mapped_base, mapped_size,
                                  SignatureKind::kBbitPacked,
                                  static_cast<uint8_t>(bits_per_hash_),
                                  num_rows(),
                                  /*length_multiple=*/bits_per_hash_,
                                  "b-bit packed", &views, &computed);
  views_ = std::move(views);
  for (auto& w : words_) w.clear();
  hashes_computed_.store(computed, std::memory_order_relaxed);
}

void BbitSignatureStore::CopyRowsFrom(const BbitSignatureStore& other) {
  assert(other.num_rows() == num_rows() &&
         other.bits_per_hash() == bits_per_hash() && !frozen());
  for (uint32_t r = 0; r < num_rows(); ++r) {
    const uint32_t other_len = other.HeldWords(r);
    if (other_len <= HeldWords(r)) continue;
    if (!other.views_.empty() && other.views_[r].second == other_len) {
      // Borrow the mmap view: the source index outlives this store per
      // the warm-start contract.
      if (views_.empty()) views_.assign(num_rows(), {nullptr, 0});
      views_[r] = other.views_[r];
    } else {
      words_[r] = other.words_[r];
    }
  }
}

}  // namespace bayeslsh
