// Signed-random-projection (SRP) hashing for cosine similarity
// (Charikar, STOC'02).
//
// h_i(x) = 1 iff dot(r_i, x) >= 0, with r_i a random Gaussian vector, and
//
//   Pr[h_i(x) == h_i(y)] = 1 - theta(x, y) / pi  =: r(x, y)
//
// Note the collision probability is r(x, y), *not* cos(x, y) — the BayesLSH
// cosine posterior (core/cosine_posterior.h) does all inference on r and maps
// results through r2c/c2r.
//
// Hashes are computed 64 at a time ("chunks") and bit-packed into a uint64_t,
// which makes comparing k = 32 or 64 hashes a single XOR + popcount.

#ifndef BAYESLSH_LSH_SRP_HASHER_H_
#define BAYESLSH_LSH_SRP_HASHER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "lsh/gaussian_source.h"
#include "vec/sparse_vector.h"

namespace bayeslsh {

// Maps the SRP collision probability r in [0.5, 1] to cosine similarity:
// r2c(r) = cos(pi (1 - r)).
inline double SrpRToCosine(double r) {
  return std::cos(std::numbers::pi * (1.0 - r));
}

// Maps cosine similarity c in [-1, 1] to the SRP collision probability:
// c2r(c) = 1 - arccos(c) / pi.
inline double CosineToSrpR(double c) {
  return 1.0 - std::acos(std::clamp(c, -1.0, 1.0)) / std::numbers::pi;
}

// Stateless hasher: signature bits of a vector are a pure function of
// (gaussian source, vector).
class SrpHasher {
 public:
  // The source must outlive the hasher.
  explicit SrpHasher(const GaussianSource* source) : source_(source) {}

  // Computes hash bits [64*chunk, 64*chunk + 64) of v, packed with hash
  // 64*chunk + j at bit j. The empty vector hashes to all-ones (projection
  // 0 counts as non-negative).
  uint64_t HashChunk(const SparseVectorView& v, uint32_t chunk) const;

 private:
  const GaussianSource* source_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_LSH_SRP_HASHER_H_
