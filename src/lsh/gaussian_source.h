// Sources of the Gaussian random-projection components used by the cosine
// LSH family (Charikar's signed random projections).
//
// Hash function h_i is defined by a random vector r_i with i.i.d. N(0, 1)
// components; h_i(x) = [dot(r_i, x) >= 0]. We provide component access in
// chunks of 64 consecutive hash indices for one dimension — exactly the
// access pattern of the SRP hasher, which computes 64 hash bits of a vector
// at a time.
//
// Two implementations:
//
//  * ImplicitGaussianSource evaluates component (i, d) on the fly from a
//    counter-based hash — zero memory, fully deterministic, random access.
//
//  * QuantizedGaussianStore materializes the first `stored_hashes` hash
//    vectors using the paper's 2-byte fixed-point scheme (§4.3): a float
//    x in (-8, 8) is stored as round((x + 8) * 65536 / 16), for a maximum
//    representation error of 2^-13 ~ 1.2e-4. Chunks are built lazily, one
//    (chunk, all dims) slab on first touch, so a pipeline that never probes
//    deep hash indices never pays for them. Indices beyond `stored_hashes`
//    fall back to the implicit source. The values are the *same* Gaussians
//    as the implicit source, up to quantization error — tests rely on this.

#ifndef BAYESLSH_LSH_GAUSSIAN_SOURCE_H_
#define BAYESLSH_LSH_GAUSSIAN_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "vec/sparse_vector.h"

namespace bayeslsh {

// Number of hash bits produced per chunk by the SRP machinery.
inline constexpr uint32_t kSrpChunkBits = 64;

// Abstract provider of N(0,1) projection components.
class GaussianSource {
 public:
  virtual ~GaussianSource() = default;

  // Writes g(hash = kSrpChunkBits*chunk + j, dim) into out[j] for
  // j in [0, kSrpChunkBits).
  virtual void FillChunk(DimId dim, uint32_t chunk, double* out) const = 0;

  // Convenience scalar access (used by tests; not on the hot path).
  double Component(uint32_t hash_index, DimId dim) const;
};

// Counter-based source: component (i, d) = Phi^-1(U(i, d)) where U is a
// uniform derived from Mix64(seed, i, d).
class ImplicitGaussianSource : public GaussianSource {
 public:
  explicit ImplicitGaussianSource(uint64_t seed) : seed_(seed) {}

  void FillChunk(DimId dim, uint32_t chunk, double* out) const override;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

// The paper's 2-byte quantized store, lazily materialized per chunk.
class QuantizedGaussianStore : public GaussianSource {
 public:
  // Components for hash indices [0, stored_hashes) are table-backed;
  // stored_hashes is rounded up to a whole number of chunks.
  QuantizedGaussianStore(uint64_t seed, uint32_t num_dims,
                         uint32_t stored_hashes);
  ~QuantizedGaussianStore() override;

  void FillChunk(DimId dim, uint32_t chunk, double* out) const override;

  // --- the paper's encoding, exposed for tests and the ablation bench ---
  // Requires x in (-8, 8), which a standard normal exceeds with probability
  // ~1.2e-15 (values outside are clamped).
  static uint16_t Quantize(double x);
  static double Dequantize(uint16_t q);

  uint32_t stored_hashes() const { return stored_chunks_ * kSrpChunkBits; }
  uint64_t seed() const { return base_.seed(); }
  // Bytes currently held by materialized slabs (instrumentation).
  uint64_t table_bytes() const;

  // Serializes the identifying (seed, num_dims, stored_hashes) triple plus
  // every slab materialized so far (docs/FORMATS.md, "Gaussian table
  // cache"), so a later run adopts the quantized tables instead of
  // re-deriving and re-quantizing them. LoadTables validates the triple
  // against this store — the slabs are a pure function of it — and throws
  // IoError on mismatch or corruption; already-materialized chunks are
  // kept (they are bit-identical by construction). Thread-safe against
  // concurrent FillChunk readers, like lazy materialization.
  void SaveTables(std::ostream& out) const;
  void LoadTables(std::istream& in);

 private:
  // Slab for chunk c: num_dims_ * kSrpChunkBits quantized values, laid out
  // dim-major so FillChunk reads one contiguous run.
  const uint16_t* Slab(uint32_t chunk) const;

  ImplicitGaussianSource base_;
  uint32_t num_dims_;
  uint32_t stored_chunks_;
  // Lazily built; mutable because materialization is a pure cache. Slabs
  // are published through an atomic pointer (built under build_mu_, read
  // lock-free) so concurrent hashing workers can share one store.
  mutable std::vector<std::atomic<const uint16_t*>> slabs_;
  mutable std::mutex build_mu_;
};

// A per-seed cache of shared Gaussian sources. Benchmarks hold one cache per
// dataset so that pipelines run with the same seed (e.g. the 7 algorithm
// variants at 5 thresholds) reuse the same quantized tables instead of
// re-deriving Gaussians from scratch.
class GaussianSourceCache {
 public:
  // stored_hashes == 0 means "implicit only" (no tables).
  GaussianSourceCache(uint32_t num_dims, uint32_t stored_hashes)
      : num_dims_(num_dims), stored_hashes_(stored_hashes) {}

  std::shared_ptr<const GaussianSource> Get(uint64_t seed);

 private:
  uint32_t num_dims_;
  uint32_t stored_hashes_;
  std::unordered_map<uint64_t, std::shared_ptr<const GaussianSource>> cache_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_LSH_GAUSSIAN_SOURCE_H_
