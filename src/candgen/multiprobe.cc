#include "candgen/multiprobe.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <vector>

#include "candgen/lsh_banding.h"
#include "common/bit_ops.h"
#include "lsh/srp_hasher.h"
#include "stats/special_functions.h"

namespace bayeslsh {

double MultiProbeBandHitProb(double collision_prob, uint32_t k,
                             uint32_t probe_radius) {
  assert(k > 0);
  const double p = std::clamp(collision_prob, 0.0, 1.0);
  double hit = 0.0;
  for (uint32_t i = 0; i <= probe_radius && i <= k; ++i) {
    hit += std::exp(LogChoose(k, i) + (k - i) * std::log(std::max(p, 1e-300)) +
                    i * std::log1p(-std::min(p, 1.0 - 1e-12)));
  }
  return std::min(hit, 1.0);
}

uint32_t DeriveNumBandsMultiProbe(double collision_prob_at_threshold,
                                  uint32_t k, uint32_t probe_radius,
                                  double fn_rate, uint32_t max_bands) {
  return DeriveNumBands(
      // DeriveNumBands expects a per-hash probability and exponentiates;
      // feed it the k-th root of the probed band-hit probability so the
      // band-level math is the multi-probe one.
      std::pow(MultiProbeBandHitProb(collision_prob_at_threshold, k,
                                     probe_radius),
               1.0 / k),
      k, fn_rate, max_bands);
}

namespace {

// All k-bit masks with popcount in [1, probe_radius], built once per call.
std::vector<uint64_t> ProbeMasks(uint32_t k, uint32_t probe_radius) {
  std::vector<uint64_t> masks;
  if (probe_radius == 0) return masks;
  // Enumerate masks by growing popcounts so near probes come first (probe
  // order does not affect the candidate set in the self-join setting, but
  // keeping it deterministic keeps runs reproducible).
  std::vector<uint64_t> frontier = {0};
  for (uint32_t level = 1; level <= probe_radius && level <= k; ++level) {
    std::vector<uint64_t> next;
    for (const uint64_t base : frontier) {
      // Extend by one bit above the highest set bit to avoid duplicates.
      const uint32_t start =
          base == 0 ? 0 : 64 - static_cast<uint32_t>(std::countl_zero(base));
      for (uint32_t b = start; b < k; ++b) {
        next.push_back(base | (1ULL << b));
      }
    }
    masks.insert(masks.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return masks;
}

}  // namespace

CandidateList MultiProbeCosineCandidates(BitSignatureStore* store,
                                         double threshold,
                                         const MultiProbeParams& params,
                                         ThreadPool* pool) {
  const uint32_t k = params.hashes_per_band != 0 ? params.hashes_per_band
                                                 : kDefaultCosineBandBits;
  assert(k <= 64);
  const double p = CosineToSrpR(threshold);
  const uint32_t l =
      params.num_bands != 0
          ? params.num_bands
          : DeriveNumBandsMultiProbe(p, k, params.probe_radius,
                                     params.expected_fn_rate,
                                     params.max_bands);
  const uint32_t n = store->num_rows();
  // Grow every row to the full banding horizon up front so the band
  // workers only ever read the store (rows are independent, so the growth
  // itself shards by row).
  if (pool != nullptr && pool->num_threads() > 1) {
    ParallelFor(pool, 0, n, [&](uint64_t row) {
      store->EnsureBitsUncounted(static_cast<uint32_t>(row), l * k);
    });
  } else {
    store->EnsureAllBits(l * k);
  }
  const std::vector<uint64_t> masks = ProbeMasks(k, params.probe_radius);

  // One emission buffer per band, filled independently and concatenated
  // in band order: DedupPairKeys sorts anyway, but keeping the merge
  // order fixed makes the determinism argument local to this function.
  std::vector<std::vector<uint64_t>> band_keys(l);
  std::vector<uint64_t> band_raw(l, 0);
  ParallelFor(pool, 0, l, [&](uint64_t band) {
    std::vector<uint64_t>& keys = band_keys[band];
    uint64_t raw = 0;
    std::vector<std::pair<uint64_t, uint32_t>> entries;
    entries.reserve(n);
    for (uint32_t row = 0; row < n; ++row) {
      if (store->data()->RowLength(row) == 0) continue;  // Never candidates.
      entries.emplace_back(
          ExtractBits(store->Words(row), store->NumBits(row) / kBitsPerWord,
                      static_cast<uint32_t>(band) * k, k),
          row);
    }
    std::sort(entries.begin(), entries.end());

    // Distance-0: all intra-bucket pairs, as in plain banding.
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i + 1;
      while (j < entries.size() && entries[j].first == entries[i].first) ++j;
      for (size_t a = i; a < j; ++a) {
        for (size_t b = a + 1; b < j; ++b) {
          const uint32_t ra = entries[a].second, rb = entries[b].second;
          keys.push_back(ra < rb ? PairKey(ra, rb) : PairKey(rb, ra));
          ++raw;
        }
      }
      i = j;
    }

    // Probes: every row looks up its signature xor each mask; each
    // cross-bucket pair within the Hamming ball is emitted once per band
    // (the row < other filter kills the mirrored probe).
    for (const auto& [sig, row] : entries) {
      for (const uint64_t mask : masks) {
        const uint64_t probe = sig ^ mask;
        auto lo = std::lower_bound(
            entries.begin(), entries.end(), probe,
            [](const std::pair<uint64_t, uint32_t>& e, uint64_t key) {
              return e.first < key;
            });
        for (; lo != entries.end() && lo->first == probe; ++lo) {
          if (row < lo->second) {
            keys.push_back(PairKey(row, lo->second));
            ++raw;
          }
        }
      }
    }
    band_raw[band] = raw;
  });

  std::vector<uint64_t> keys;
  uint64_t raw = 0;
  {
    size_t total = 0;
    for (const auto& bk : band_keys) total += bk.size();
    keys.reserve(total);
  }
  for (uint32_t band = 0; band < l; ++band) {
    keys.insert(keys.end(), band_keys[band].begin(), band_keys[band].end());
    raw += band_raw[band];
  }
  CandidateList out = DedupPairKeys(std::move(keys));
  out.raw_emitted = raw;
  return out;
}

}  // namespace bayeslsh
