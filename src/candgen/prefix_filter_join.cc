#include "candgen/prefix_filter_join.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/bit_ops.h"

namespace bayeslsh {

namespace {

// Rows re-tokenized by frequency rank and sorted by size.
struct BinaryReordered {
  std::vector<uint32_t> orig_id;             // By processing position.
  std::vector<std::vector<uint32_t>> rows;   // Ranked tokens, ascending.
};

BinaryReordered ReorderBinary(const Dataset& data) {
  BinaryReordered r;
  const uint32_t n = data.num_vectors();
  const uint32_t d = data.num_dims();
  const std::vector<uint32_t> freq = data.DimFrequencies();
  std::vector<uint32_t> dims(d);
  std::iota(dims.begin(), dims.end(), 0u);
  // Rare tokens first: ascending frequency.
  std::sort(dims.begin(), dims.end(), [&](uint32_t a, uint32_t b) {
    return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
  });
  std::vector<uint32_t> rank_of(d);
  for (uint32_t i = 0; i < d; ++i) rank_of[dims[i]] = i;

  r.orig_id.resize(n);
  std::iota(r.orig_id.begin(), r.orig_id.end(), 0u);
  std::sort(r.orig_id.begin(), r.orig_id.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t la = data.RowLength(a), lb = data.RowLength(b);
    return la != lb ? la < lb : a < b;
  });

  r.rows.resize(n);
  for (uint32_t p = 0; p < n; ++p) {
    const SparseVectorView v = data.Row(r.orig_id[p]);
    auto& row = r.rows[p];
    row.resize(v.size());
    for (uint32_t k = 0; k < v.size(); ++k) row[k] = rank_of[v.indices[k]];
    std::sort(row.begin(), row.end());
  }
  return r;
}

uint32_t PrefixLength(uint32_t size, double threshold, Measure measure) {
  if (size == 0) return 0;
  const double frac = measure == Measure::kJaccard
                          ? threshold
                          : threshold * threshold;  // Binary cosine.
  const uint32_t need = CeilSafe(frac * size);
  return need >= size ? 1u : size - need + 1u;
}

uint32_t MinSize(uint32_t probe_size, double threshold, Measure measure) {
  const double frac = measure == Measure::kJaccard
                          ? threshold
                          : threshold * threshold;
  return CeilSafe(frac * probe_size);
}

// Exact overlap by merge of two ascending token arrays.
uint32_t MergeOverlap(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  uint32_t o = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++o;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return o;
}

double SetSimilarity(uint32_t overlap, uint32_t la, uint32_t lb,
                     Measure measure) {
  if (measure == Measure::kJaccard) {
    const uint32_t uni = la + lb - overlap;
    return uni == 0 ? 0.0 : static_cast<double>(overlap) / uni;
  }
  if (la == 0 || lb == 0) return 0.0;
  return overlap / std::sqrt(static_cast<double>(la) * lb);
}

struct Posting {
  uint32_t pos;   // Processing position.
  uint32_t size;  // Row size (for the lazy size filter).
};

void PrefixFilterCore(const Dataset& data, double threshold, Measure measure,
                      std::vector<ScoredPair>* out_matches,
                      std::vector<uint64_t>* out_candidates,
                      PrefixJoinStats* stats) {
  assert(threshold > 0.0 && threshold <= 1.0);
  assert(measure == Measure::kJaccard || measure == Measure::kBinaryCosine);
  const uint32_t n = data.num_vectors();
  BinaryReordered r = ReorderBinary(data);

  std::vector<std::vector<Posting>> index(data.num_dims());
  // Lazy size-filter front pointer per posting list: rows are indexed in
  // increasing size order, so undersized entries cluster at the front.
  std::vector<uint32_t> front(data.num_dims(), 0);

  std::vector<uint32_t> stamp(n, UINT32_MAX);
  std::vector<uint32_t> touched;

  PrefixJoinStats local;
  for (uint32_t p = 0; p < n; ++p) {
    const auto& x = r.rows[p];
    const auto size = static_cast<uint32_t>(x.size());
    const uint32_t px = PrefixLength(size, threshold, measure);
    const uint32_t minsize = MinSize(size, threshold, measure);

    touched.clear();
    for (uint32_t k = 0; k < px && k < size; ++k) {
      const uint32_t w = x[k];
      auto& list = index[w];
      uint32_t& f = front[w];
      while (f < list.size() && list[f].size < minsize) {
        ++f;
        ++local.size_skipped;
      }
      for (uint32_t e = f; e < list.size(); ++e) {
        const uint32_t q = list[e].pos;
        if (stamp[q] != p) {
          stamp[q] = p;
          touched.push_back(q);
        }
      }
    }
    local.candidates += touched.size();

    if (out_candidates != nullptr) {
      for (uint32_t q : touched) {
        const uint32_t a = r.orig_id[q], b = r.orig_id[p];
        out_candidates->push_back(a < b ? PairKey(a, b) : PairKey(b, a));
      }
    }
    if (out_matches != nullptr) {
      for (uint32_t q : touched) {
        ++local.verified;
        const uint32_t o = MergeOverlap(x, r.rows[q]);
        const double s = SetSimilarity(
            o, size, static_cast<uint32_t>(r.rows[q].size()), measure);
        if (s >= threshold) {
          const uint32_t a = r.orig_id[q], b = r.orig_id[p];
          out_matches->push_back(a < b ? ScoredPair{a, b, s}
                                       : ScoredPair{b, a, s});
        }
      }
    }

    // Index x's prefix.
    for (uint32_t k = 0; k < px && k < size; ++k) {
      index[x[k]].push_back({p, size});
    }
  }
  if (stats != nullptr) *stats = local;
}

}  // namespace

std::vector<ScoredPair> PrefixFilterJoin(const Dataset& data,
                                         double threshold, Measure measure,
                                         PrefixJoinStats* stats) {
  std::vector<ScoredPair> matches;
  PrefixFilterCore(data, threshold, measure, &matches, nullptr, stats);
  std::sort(matches.begin(), matches.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.a != b.a ? a.a < b.a : a.b < b.b;
            });
  return matches;
}

CandidateList PrefixFilterCandidates(const Dataset& data, double threshold,
                                     Measure measure,
                                     PrefixJoinStats* stats) {
  std::vector<uint64_t> keys;
  PrefixFilterCore(data, threshold, measure, nullptr, &keys, stats);
  return DedupPairKeys(std::move(keys));
}

}  // namespace bayeslsh
