#include "candgen/prefix_filter_join.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/bit_ops.h"

namespace bayeslsh {

namespace {

// Rows re-tokenized by frequency rank and sorted by size.
struct BinaryReordered {
  std::vector<uint32_t> orig_id;             // By processing position.
  std::vector<std::vector<uint32_t>> rows;   // Ranked tokens, ascending.
};

BinaryReordered ReorderBinary(const Dataset& data, ThreadPool* pool) {
  BinaryReordered r;
  const uint32_t n = data.num_vectors();
  const uint32_t d = data.num_dims();
  const std::vector<uint32_t> freq = data.DimFrequencies();
  std::vector<uint32_t> dims(d);
  std::iota(dims.begin(), dims.end(), 0u);
  // Rare tokens first: ascending frequency.
  std::sort(dims.begin(), dims.end(), [&](uint32_t a, uint32_t b) {
    return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
  });
  std::vector<uint32_t> rank_of(d);
  for (uint32_t i = 0; i < d; ++i) rank_of[dims[i]] = i;

  r.orig_id.resize(n);
  std::iota(r.orig_id.begin(), r.orig_id.end(), 0u);
  std::sort(r.orig_id.begin(), r.orig_id.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t la = data.RowLength(a), lb = data.RowLength(b);
    return la != lb ? la < lb : a < b;
  });

  r.rows.resize(n);
  ParallelFor(pool, 0, n, [&](uint64_t p) {
    const SparseVectorView v = data.Row(r.orig_id[p]);
    auto& row = r.rows[p];
    row.resize(v.size());
    for (uint32_t k = 0; k < v.size(); ++k) row[k] = rank_of[v.indices[k]];
    std::sort(row.begin(), row.end());
  });
  return r;
}

uint32_t PrefixLength(uint32_t size, double threshold, Measure measure) {
  if (size == 0) return 0;
  const double frac = measure == Measure::kJaccard
                          ? threshold
                          : threshold * threshold;  // Binary cosine.
  const uint32_t need = CeilSafe(frac * size);
  return need >= size ? 1u : size - need + 1u;
}

uint32_t MinSize(uint32_t probe_size, double threshold, Measure measure) {
  const double frac = measure == Measure::kJaccard
                          ? threshold
                          : threshold * threshold;
  return CeilSafe(frac * probe_size);
}

// Exact overlap by merge of two ascending token arrays.
uint32_t MergeOverlap(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  uint32_t o = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++o;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return o;
}

double SetSimilarity(uint32_t overlap, uint32_t la, uint32_t lb,
                     Measure measure) {
  if (measure == Measure::kJaccard) {
    const uint32_t uni = la + lb - overlap;
    return uni == 0 ? 0.0 : static_cast<double>(overlap) / uni;
  }
  if (la == 0 || lb == 0) return 0.0;
  return overlap / std::sqrt(static_cast<double>(la) * lb);
}

struct Posting {
  uint32_t pos;   // Processing position.
  uint32_t size;  // Row size (for the lazy size filter).
};

// Two-phase core (cf. AllPairsCore): phase 1 builds the full prefix index
// in processing order, phase 2 probes each row against the entries indexed
// before it (early break on the position-sorted posting lists) — identical
// to the classical interleaved formulation, but shardable over probe rows.
void PrefixFilterCore(const Dataset& data, double threshold, Measure measure,
                      std::vector<ScoredPair>* out_matches,
                      std::vector<uint64_t>* out_candidates,
                      PrefixJoinStats* stats, ThreadPool* pool) {
  assert(threshold > 0.0 && threshold <= 1.0);
  assert(measure == Measure::kJaccard || measure == Measure::kBinaryCosine);
  const uint32_t n = data.num_vectors();
  BinaryReordered r = ReorderBinary(data, pool);

  // --- Phase 1: full prefix index, in position order. ---
  std::vector<std::vector<Posting>> index(data.num_dims());
  for (uint32_t p = 0; p < n; ++p) {
    const auto& x = r.rows[p];
    const auto size = static_cast<uint32_t>(x.size());
    const uint32_t px = PrefixLength(size, threshold, measure);
    for (uint32_t k = 0; k < px && k < size; ++k) {
      index[x[k]].push_back({p, size});
    }
  }

  // --- Phase 2: probe, sharded over probe rows. ---
  const uint32_t num_shards = pool != nullptr ? pool->num_threads() : 1u;
  struct ProbeShard {
    std::vector<uint64_t> keys;
    std::vector<ScoredPair> matches;
    PrefixJoinStats stats;
  };
  std::vector<ProbeShard> shards(num_shards);
  auto probe = [&](uint32_t shard, uint64_t p_begin, uint64_t p_end) {
    ProbeShard& sh = shards[shard];
    std::vector<uint32_t> stamp(n, UINT32_MAX);
    std::vector<uint32_t> touched;
    // Worker-local lazy size-filter front pointers: rows are indexed in
    // increasing size order and probed in increasing minsize order within
    // the shard, so undersized entries cluster at the front, as in the
    // interleaved formulation.
    std::vector<uint32_t> front(data.num_dims(), 0);
    for (uint32_t p = static_cast<uint32_t>(p_begin); p < p_end; ++p) {
      const auto& x = r.rows[p];
      const auto size = static_cast<uint32_t>(x.size());
      const uint32_t px = PrefixLength(size, threshold, measure);
      const uint32_t minsize = MinSize(size, threshold, measure);

      touched.clear();
      for (uint32_t k = 0; k < px && k < size; ++k) {
        const uint32_t w = x[k];
        const auto& list = index[w];
        uint32_t& f = front[w];
        while (f < list.size() && list[f].size < minsize) {
          ++f;
          ++sh.stats.size_skipped;
        }
        for (uint32_t e = f; e < list.size(); ++e) {
          const uint32_t q = list[e].pos;
          if (q >= p) break;  // Lists are sorted by position.
          if (stamp[q] != p) {
            stamp[q] = p;
            touched.push_back(q);
          }
        }
      }
      sh.stats.candidates += touched.size();

      if (out_candidates != nullptr) {
        for (uint32_t q : touched) {
          const uint32_t a = r.orig_id[q], b = r.orig_id[p];
          sh.keys.push_back(a < b ? PairKey(a, b) : PairKey(b, a));
        }
      }
      if (out_matches != nullptr) {
        for (uint32_t q : touched) {
          ++sh.stats.verified;
          const uint32_t o = MergeOverlap(x, r.rows[q]);
          const double s = SetSimilarity(
              o, size, static_cast<uint32_t>(r.rows[q].size()), measure);
          if (s >= threshold) {
            const uint32_t a = r.orig_id[q], b = r.orig_id[p];
            sh.matches.push_back(a < b ? ScoredPair{a, b, s}
                                       : ScoredPair{b, a, s});
          }
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->RunShards(n, probe);
  } else {
    probe(0, 0, n);
  }

  PrefixJoinStats local;
  for (ProbeShard& sh : shards) {
    if (out_candidates != nullptr) {
      out_candidates->insert(out_candidates->end(), sh.keys.begin(),
                             sh.keys.end());
    }
    if (out_matches != nullptr) {
      out_matches->insert(out_matches->end(), sh.matches.begin(),
                          sh.matches.end());
    }
    local.candidates += sh.stats.candidates;
    local.size_skipped += sh.stats.size_skipped;
    local.verified += sh.stats.verified;
  }
  if (stats != nullptr) *stats = local;
}

}  // namespace

std::vector<ScoredPair> PrefixFilterJoin(const Dataset& data,
                                         double threshold, Measure measure,
                                         PrefixJoinStats* stats,
                                         ThreadPool* pool) {
  std::vector<ScoredPair> matches;
  PrefixFilterCore(data, threshold, measure, &matches, nullptr, stats, pool);
  std::sort(matches.begin(), matches.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.a != b.a ? a.a < b.a : a.b < b.b;
            });
  return matches;
}

CandidateList PrefixFilterCandidates(const Dataset& data, double threshold,
                                     Measure measure, PrefixJoinStats* stats,
                                     ThreadPool* pool) {
  std::vector<uint64_t> keys;
  PrefixFilterCore(data, threshold, measure, nullptr, &keys, stats, pool);
  return DedupPairKeys(std::move(keys));
}

}  // namespace bayeslsh
