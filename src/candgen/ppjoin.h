// PPJoin and PPJoin+ (Xiao, Wang, Lin & Yu, WWW 2008): exact similarity
// joins for binary vectors — the paper's strongest exact baseline on the
// binary experiments (Figures 3(g)-(l), Table 2).
//
// PPJoin = prefix filtering (as in candgen/prefix_filter_join.h) plus
// *positional* filtering: when probe token k of x matches index entry
// (y, j), the remaining overlap is at most 1 + min(|x|-k-1, |y|-j-1), so a
// pair whose accumulated count plus that bound cannot reach the required
// overlap α(x, y) is dead and never revisited. α is
//
//     Jaccard:       ceil( t/(1+t) (|x| + |y|) )
//     binary cosine: ceil( t sqrt(|x| |y|) )
//
// PPJoin+ adds *suffix* filtering on a pair's first encounter: a recursive
// probe-partition of the two suffixes lower-bounds their Hamming distance;
// if it exceeds H_max = |xs| + |ys| - 2 (α - 1), the pair is pruned without
// an exact merge. Depth is capped (kSuffixFilterMaxDepth), trading filter
// strength for probe cost, exactly as in the original paper.

#ifndef BAYESLSH_CANDGEN_PPJOIN_H_
#define BAYESLSH_CANDGEN_PPJOIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "sim/brute_force.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

inline constexpr int kSuffixFilterMaxDepth = 2;

struct PpjoinStats {
  uint64_t encounters = 0;         // First-time candidate encounters.
  uint64_t positional_pruned = 0;  // Killed by the positional filter.
  uint64_t suffix_pruned = 0;      // Killed by the suffix filter.
  uint64_t verified = 0;           // Exact merges performed.
};

// Exact join over index sets; `measure` must be kJaccard or kBinaryCosine,
// threshold in (0, 1]. use_suffix_filter=false gives plain PPJoin,
// true gives PPJoin+. With a pool, the probe loop shards over row ranges
// (two-phase, as in candgen/prefix_filter_join.h) with identical output.
std::vector<ScoredPair> PpjoinJoin(const Dataset& data, double threshold,
                                   Measure measure,
                                   bool use_suffix_filter = true,
                                   PpjoinStats* stats = nullptr,
                                   ThreadPool* pool = nullptr);

// Lower bound on the Hamming distance between two ascending token arrays,
// by recursive probe partitioning (Algorithm "SuffixFilter" of the PPJoin+
// paper). Guaranteed to never exceed... i.e. never to over-estimate beyond
// hmax + small slack in a way that prunes a qualifying pair: whenever the
// returned value is > hmax, the true Hamming distance is also > hmax.
// Exposed for direct unit testing.
int SuffixHammingLowerBound(std::span<const uint32_t> x,
                            std::span<const uint32_t> y, int hmax,
                            int depth = 1);

}  // namespace bayeslsh

#endif  // BAYESLSH_CANDGEN_PPJOIN_H_
