#include "candgen/ppjoin.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "candgen/prefix_filter_join.h"

namespace bayeslsh {

int SuffixHammingLowerBound(std::span<const uint32_t> x,
                            std::span<const uint32_t> y, int hmax,
                            int depth) {
  const int nx = static_cast<int>(x.size());
  const int ny = static_cast<int>(y.size());
  const int size_diff = std::abs(nx - ny);
  if (nx == 0 || ny == 0) return size_diff;
  if (depth > kSuffixFilterMaxDepth) return size_diff;
  // The size difference is itself a valid lower bound; if it already blows
  // the budget there is no need to partition further.
  if (size_diff > hmax) return size_diff;

  // Partition both arrays around y's middle token. Because the arrays are
  // sorted, tokens < w can only match left-side tokens and tokens > w only
  // right-side ones, so
  //
  //   H(x, y) = H(xl, yl) + H(xr, yr) + [w not in x]
  //          >= ||xl| - |yl|| + ||xr| - |yr|| + [w not in x].
  //
  // (The original paper additionally restricts the binary search to a
  // positional window derived from hmax; that is a constant-factor probe
  // optimization of the same bound — a position outside the window forces
  // the size-imbalance term above the budget — and is deliberately omitted:
  // every value returned here is a plain lower bound, which makes the
  // no-over-pruning property self-evident.)
  const int mid = ny / 2;
  const uint32_t w = y[mid];
  const uint32_t* pos = std::lower_bound(x.data(), x.data() + nx, w);
  const int p = static_cast<int>(pos - x.data());
  const bool found = p < nx && x[p] == w;
  const int diff = found ? 0 : 1;

  const auto xl = x.subspan(0, p);
  const auto xr = x.subspan(found ? p + 1 : p);
  const auto yl = y.subspan(0, mid);
  const auto yr = y.subspan(mid + 1);

  const int outer = std::abs(static_cast<int>(xl.size()) -
                             static_cast<int>(yl.size())) +
                    std::abs(static_cast<int>(xr.size()) -
                             static_cast<int>(yr.size())) +
                    diff;
  if (outer > hmax) return outer;

  const int hl_budget =
      hmax - diff - std::abs(static_cast<int>(xr.size()) -
                             static_cast<int>(yr.size()));
  const int hl = SuffixHammingLowerBound(xl, yl, hl_budget, depth + 1);
  const int with_left = hl + diff + std::abs(static_cast<int>(xr.size()) -
                                             static_cast<int>(yr.size()));
  if (with_left > hmax) return with_left;

  const int hr_budget = hmax - diff - hl;
  const int hr = SuffixHammingLowerBound(xr, yr, hr_budget, depth + 1);
  return hl + hr + diff;
}

namespace {

struct Posting {
  uint32_t pos;     // Processing position of the indexed row.
  uint32_t size;    // Its size (lazy size filter).
  uint32_t offset;  // Token position within the indexed row.
};

uint32_t RequiredOverlap(uint32_t la, uint32_t lb, double threshold,
                         Measure measure) {
  if (measure == Measure::kJaccard) {
    return CeilSafe(threshold / (1.0 + threshold) *
                    (static_cast<double>(la) + lb));
  }
  return CeilSafe(threshold * std::sqrt(static_cast<double>(la) * lb));
}

uint32_t PrefixLengthOf(uint32_t size, double threshold, Measure measure) {
  if (size == 0) return 0;
  const double frac = measure == Measure::kJaccard
                          ? threshold
                          : threshold * threshold;
  const uint32_t need = CeilSafe(frac * size);
  return need >= size ? 1u : size - need + 1u;
}

uint32_t MergeOverlap(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  uint32_t o = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++o;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return o;
}

}  // namespace

std::vector<ScoredPair> PpjoinJoin(const Dataset& data, double threshold,
                                   Measure measure, bool use_suffix_filter,
                                   PpjoinStats* stats, ThreadPool* pool) {
  assert(threshold > 0.0 && threshold <= 1.0);
  assert(measure == Measure::kJaccard || measure == Measure::kBinaryCosine);
  const uint32_t n = data.num_vectors();
  const uint32_t d = data.num_dims();

  // Reorder: tokens by ascending frequency, rows by ascending size
  // (identical to the prefix-filter join; kept local for self-containment).
  const std::vector<uint32_t> freq = data.DimFrequencies();
  std::vector<uint32_t> dims(d);
  std::iota(dims.begin(), dims.end(), 0u);
  std::sort(dims.begin(), dims.end(), [&](uint32_t a, uint32_t b) {
    return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
  });
  std::vector<uint32_t> rank_of(d);
  for (uint32_t i = 0; i < d; ++i) rank_of[dims[i]] = i;

  std::vector<uint32_t> orig_id(n);
  std::iota(orig_id.begin(), orig_id.end(), 0u);
  std::sort(orig_id.begin(), orig_id.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t la = data.RowLength(a), lb = data.RowLength(b);
    return la != lb ? la < lb : a < b;
  });
  std::vector<std::vector<uint32_t>> rows(n);
  ParallelFor(pool, 0, n, [&](uint64_t p) {
    const SparseVectorView v = data.Row(orig_id[p]);
    rows[p].resize(v.size());
    for (uint32_t k = 0; k < v.size(); ++k) rows[p][k] = rank_of[v.indices[k]];
    std::sort(rows[p].begin(), rows[p].end());
  });

  // Phase 1: full prefix index in position order (see
  // candgen/prefix_filter_join.cc for why probing entries with pos < p
  // reproduces the interleaved formulation exactly).
  std::vector<std::vector<Posting>> index(d);
  for (uint32_t p = 0; p < n; ++p) {
    const auto& x = rows[p];
    const auto size_x = static_cast<uint32_t>(x.size());
    const uint32_t px = PrefixLengthOf(size_x, threshold, measure);
    for (uint32_t k = 0; k < px && k < size_x; ++k) {
      index[x[k]].push_back({p, size_x, k});
    }
  }

  constexpr int64_t kDead = std::numeric_limits<int64_t>::min();

  // Phase 2: probe, sharded over probe rows.
  const uint32_t num_shards = pool != nullptr ? pool->num_threads() : 1u;
  struct ProbeShard {
    std::vector<ScoredPair> out;
    PpjoinStats stats;
  };
  std::vector<ProbeShard> shards(num_shards);
  auto probe = [&](uint32_t shard, uint64_t p_begin, uint64_t p_end) {
    ProbeShard& sh = shards[shard];
    PpjoinStats& local = sh.stats;
    std::vector<ScoredPair>& out = sh.out;
    std::vector<int64_t> acc(n, 0);
    std::vector<uint32_t> stamp(n, UINT32_MAX);
    std::vector<uint32_t> touched;
    std::vector<uint32_t> front(d, 0);

    for (uint32_t p = static_cast<uint32_t>(p_begin); p < p_end; ++p) {
    const auto& x = rows[p];
    const auto size_x = static_cast<uint32_t>(x.size());
    const uint32_t px = PrefixLengthOf(size_x, threshold, measure);
    const double frac = measure == Measure::kJaccard
                            ? threshold
                            : threshold * threshold;
    const uint32_t minsize = CeilSafe(frac * size_x);

    touched.clear();
    for (uint32_t k = 0; k < px && k < size_x; ++k) {
      const uint32_t w = x[k];
      const auto& list = index[w];
      uint32_t& f = front[w];
      while (f < list.size() && list[f].size < minsize) ++f;
      for (uint32_t e = f; e < list.size(); ++e) {
        const Posting& pe = list[e];
        const uint32_t q = pe.pos;
        if (q >= p) break;  // Lists are sorted by position.
        if (stamp[q] != p) {
          stamp[q] = p;
          acc[q] = 0;
          touched.push_back(q);
        }
        if (acc[q] == kDead) continue;
        const auto& y = rows[q];
        const auto size_y = static_cast<uint32_t>(y.size());
        const uint32_t alpha =
            RequiredOverlap(size_x, size_y, threshold, measure);
        // Positional filter: best possible total overlap from here on.
        const int64_t ubound =
            1 + std::min<int64_t>(size_x - k - 1, size_y - pe.offset - 1);
        if (acc[q] + ubound < static_cast<int64_t>(alpha)) {
          ++local.positional_pruned;
          acc[q] = kDead;
          continue;
        }
        if (acc[q] == 0) {
          // First encounter: tokens before (k, offset) in either row cannot
          // match the other (see header), so total overlap =
          // 1 + overlap(suffixes).
          ++local.encounters;
          if (use_suffix_filter) {
            const std::span<const uint32_t> xs(x.data() + k + 1,
                                               size_x - k - 1);
            const std::span<const uint32_t> ys(y.data() + pe.offset + 1,
                                               size_y - pe.offset - 1);
            const int need_suffix = static_cast<int>(alpha) - 1;
            const int hmax = static_cast<int>(xs.size()) +
                             static_cast<int>(ys.size()) - 2 * need_suffix;
            if (hmax < 0 ||
                SuffixHammingLowerBound(xs, ys, hmax) > hmax) {
              ++local.suffix_pruned;
              acc[q] = kDead;
              continue;
            }
          }
        }
        acc[q] += 1;
      }
    }

    for (uint32_t q : touched) {
      if (acc[q] == kDead || acc[q] <= 0) continue;
      ++local.verified;
      const auto& y = rows[q];
      const uint32_t o = MergeOverlap(x, y);
      const uint32_t size_y = static_cast<uint32_t>(y.size());
      double s;
      if (measure == Measure::kJaccard) {
        const uint32_t uni = size_x + size_y - o;
        s = uni == 0 ? 0.0 : static_cast<double>(o) / uni;
      } else {
        s = (size_x == 0 || size_y == 0)
                ? 0.0
                : o / std::sqrt(static_cast<double>(size_x) * size_y);
      }
      if (s >= threshold) {
        const uint32_t a = orig_id[q], b = orig_id[p];
        out.push_back(a < b ? ScoredPair{a, b, s} : ScoredPair{b, a, s});
      }
    }
    }
  };
  if (pool != nullptr) {
    pool->RunShards(n, probe);
  } else {
    probe(0, 0, n);
  }

  PpjoinStats local;
  std::vector<ScoredPair> out;
  for (ProbeShard& sh : shards) {
    out.insert(out.end(), sh.out.begin(), sh.out.end());
    local.encounters += sh.stats.encounters;
    local.positional_pruned += sh.stats.positional_pruned;
    local.suffix_pruned += sh.stats.suffix_pruned;
    local.verified += sh.stats.verified;
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.a != b.a ? a.a < b.a : a.b < b.b;
            });
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace bayeslsh
