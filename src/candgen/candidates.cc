#include "candgen/candidates.h"

#include <algorithm>

namespace bayeslsh {

CandidateList DedupPairKeys(std::vector<uint64_t>&& keys) {
  CandidateList out;
  out.raw_emitted = keys.size();
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  out.pairs.reserve(keys.size());
  for (uint64_t k : keys) {
    out.pairs.emplace_back(static_cast<uint32_t>(k >> 32),
                           static_cast<uint32_t>(k));
  }
  keys.clear();
  keys.shrink_to_fit();
  return out;
}

}  // namespace bayeslsh
