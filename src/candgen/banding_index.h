// Reusable LSH banding bucket table over a fixed collection: the
// candidate-generation half of the serve path (core/query_search.h,
// core/index_io.h).
//
// The all-pairs pipeline consumes banding transiently — buckets are built,
// pairs are emitted, buckets are dropped (candgen/lsh_banding.h). Query
// serving instead probes the same buckets once per query, so this class
// materializes them as a persistent structure: per band, a hash map from
// the band's key to the rows in that bucket.
//
// Keys: for cosine-like measures a band key is k consecutive SRP bits
// extracted from the row's bit signature; for Jaccard it is a Mix64 chain
// over the band's k minwise hashes (seeded per band, so identical hash
// runs in different bands do not alias). Build uses generation-seed
// hashes; verification hashes are an independent stream (DESIGN.md §6).
//
// Determinism: builds shard signature growth over rows and the bucket fill
// over bands (each band's map is owned by exactly one worker), so the
// table is independent of the thread count; bucket row lists are in
// ascending row order by construction. Save() writes each band's keys in
// sorted order, making the serialized form byte-stable.

#ifndef BAYESLSH_CANDGEN_BANDING_INDEX_H_
#define BAYESLSH_CANDGEN_BANDING_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "lsh/gaussian_source.h"
#include "lsh/store_base.h"
#include "vec/dataset.h"

namespace bayeslsh {

class BandingIndex {
 public:
  using Buckets = std::unordered_map<uint64_t, std::vector<uint32_t>>;

  BandingIndex() = default;

  uint32_t num_bands() const { return static_cast<uint32_t>(bands_.size()); }
  uint32_t hashes_per_band() const { return hashes_per_band_; }

  const Buckets& band(uint32_t b) const { return bands_[b]; }

  // Rows in `band` whose key equals `key`, or nullptr when the bucket is
  // empty — the per-query probe.
  const std::vector<uint32_t>* Find(uint32_t band, uint64_t key) const {
    const auto it = bands_[band].find(key);
    return it == bands_[band].end() ? nullptr : &it->second;
  }

  // Builds the table over bit signatures from any word-chunk hash family
  // (SRP, KLSH) with CosineKey band keys; the hasher must be built with the
  // generation seed (banding hashes are never reused for verification).
  static BandingIndex BuildBits(const Dataset& data,
                                std::shared_ptr<const WordChunkHasher> hasher,
                                uint32_t k, uint32_t l,
                                ThreadPool* pool = nullptr);

  // Builds the table over integer signatures from any int-chunk hash family
  // (minwise, ICWS, p-stable) with JaccardKey band keys.
  static BandingIndex BuildInts(const Dataset& data,
                                std::shared_ptr<const IntChunkHasher> hasher,
                                uint32_t k, uint32_t l,
                                ThreadPool* pool = nullptr);

  // Builds the table over the collection's SRP bit signatures (cosine-like
  // measures). `gauss` supplies the generation-seed projections.
  static BandingIndex BuildCosine(const Dataset& data,
                                  const GaussianSource* gauss, uint32_t k,
                                  uint32_t l, ThreadPool* pool = nullptr);

  // Builds the table over the collection's minwise signatures (Jaccard),
  // hashing with the generation seed.
  static BandingIndex BuildJaccard(const Dataset& data, uint64_t gen_seed,
                                   uint32_t k, uint32_t l,
                                   ThreadPool* pool = nullptr);

  // Incremental insert of one row appended to the collection after the
  // batch build — the LSM delta growth path (core/dynamic_index.h). The
  // row's generation signature is hashed l*k deep and the row id appended
  // to its bucket in every band. Inserting rows in ascending id order
  // reproduces the batch Build table exactly; empty rows are skipped, as
  // the batch build skips them. The table must already be built (it
  // carries the banding shape); not concurrent-safe with Find — callers
  // serialize inserts against probes.
  void InsertCosine(const SparseVectorView& v, uint32_t row,
                    const GaussianSource* gauss);
  void InsertJaccard(const SparseVectorView& v, uint32_t row,
                     uint64_t gen_seed);

  // Generic inserts mirroring BuildBits/BuildInts. `row` is the id the
  // bucket entry records AND the id handed to the hasher (so per-row
  // caches key correctly — pass the id within the hasher's dataset).
  void InsertBits(const SparseVectorView& v, uint32_t row,
                  const WordChunkHasher& hasher);
  void InsertInts(const SparseVectorView& v, uint32_t row,
                  const IntChunkHasher& hasher);

  // Band key of a query signature; `words`/`ints` must cover l*k hashes.
  // `num_words` is the length of the `words` array (bounds-asserted by
  // ExtractBits in Debug builds).
  static uint64_t CosineKey(const uint64_t* words, uint32_t num_words,
                            uint32_t band, uint32_t k);
  static uint64_t JaccardKey(const uint32_t* ints, uint32_t band,
                             uint32_t k);

  // Serializes the table as the "Banding section" of docs/FORMATS.md —
  // deterministic (keys sorted per band). Load validates structure (sorted
  // unique keys, non-empty buckets, row ids < num_rows) and throws IoError
  // on corruption, leaving the index unchanged.
  void Save(std::ostream& out) const;
  static BandingIndex Load(std::istream& in, uint32_t num_rows);

 private:
  uint32_t hashes_per_band_ = 0;
  std::vector<Buckets> bands_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CANDGEN_BANDING_INDEX_H_
