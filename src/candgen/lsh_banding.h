// LSH banding index: the classical candidate-generation scheme described in
// paper §2.
//
// Each object gets l signatures, each the concatenation of k hashes; any
// pair sharing at least one signature becomes a candidate. For a collision
// probability p per hash at the similarity threshold, the number of bands
// needed for an expected false-negative rate ε is
//
//     l = ceil( log ε / log(1 - p^k) )          [Xiao et al., TODS 2011]
//
// with p = t for minwise/Jaccard and p = c2r(t) = 1 - arccos(t)/π for
// SRP/cosine.
//
// The signatures come from the same lazy stores used for verification, but
// the pipeline draws them from an independent seed: BayesLSH's posterior
// math assumes the verification hashes are unbiased, which hashes already
// conditioned on a band collision are not (DESIGN.md §6).

#ifndef BAYESLSH_CANDGEN_LSH_BANDING_H_
#define BAYESLSH_CANDGEN_LSH_BANDING_H_

#include <cstdint>

#include "candgen/candidates.h"
#include "common/thread_pool.h"
#include "lsh/signature_store.h"
#include "sim/similarity.h"

namespace bayeslsh {

struct LshBandingParams {
  // Hashes concatenated per signature (k). 0 selects the per-measure
  // default: 8 bits for cosine, 3 ints for Jaccard.
  uint32_t hashes_per_band = 0;

  // Number of bands (l). 0 derives l from expected_fn_rate at the threshold.
  uint32_t num_bands = 0;

  // Expected false-negative rate ε used to derive l (paper uses 0.03).
  double expected_fn_rate = 0.03;

  // Safety cap on the derived l.
  uint32_t max_bands = 4096;
};

inline constexpr uint32_t kDefaultCosineBandBits = 8;
inline constexpr uint32_t kDefaultJaccardBandInts = 3;
inline constexpr uint32_t kDefaultEuclideanBandInts = 4;

// l = ceil(log ε / log(1 - p^k)), clamped to [1, max_bands].
uint32_t DeriveNumBands(double collision_prob_at_threshold, uint32_t k,
                        double fn_rate, uint32_t max_bands);

// A fully resolved banding shape: k hashes per band × l bands.
struct BandingShape {
  uint32_t hashes_per_band = 0;  // k.
  uint32_t num_bands = 0;        // l.
};

// Resolves the 0-means-default fields of `params` for the given measure
// and threshold: k falls back to the per-measure default, l is derived
// from the expected false-negative rate at the threshold's collision
// probability (p = t for Jaccard and weighted Jaccard, p = c2r(t) for
// cosine-like measures including the kernel cosine, and for Euclidean the
// p-stable collision probability at the radius with the serving stack's
// width convention w = 2 * radius — a scale-free constant). Shared by the
// query searcher and the persistent-index builder so both sides of a
// save/load round trip agree on the shape.
BandingShape ResolveBandingShape(Measure measure, double threshold,
                                 const LshBandingParams& params);

// Candidate pairs for cosine similarity: bands over SRP bit signatures.
// Grows the store to num_bands * hashes_per_band bits for every row.
//
// With a pool, signature growth shards over row ranges and the bucket
// build shards over bands (per-worker pair accumulators, concatenated and
// deduplicated at the end) — output is identical for any thread count.
CandidateList CosineLshCandidates(BitSignatureStore* store, double threshold,
                                  const LshBandingParams& params,
                                  ThreadPool* pool = nullptr);

// Candidate pairs for Jaccard: bands over minwise integer signatures.
CandidateList JaccardLshCandidates(IntSignatureStore* store, double threshold,
                                   const LshBandingParams& params,
                                   ThreadPool* pool = nullptr);

}  // namespace bayeslsh

#endif  // BAYESLSH_CANDGEN_LSH_BANDING_H_
