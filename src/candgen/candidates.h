// Common types for the candidate-generation phase.
//
// Candidate generators produce *unverified* pairs; the verification phase
// (exact, MLE, or BayesLSH — see core/) decides which of them are true
// positives. The paper's central observation is that generators emit orders
// of magnitude more candidates than there are result pairs, so the list also
// carries bookkeeping used by the figures (e.g. Fig. 4 plots how fast
// BayesLSH burns this list down).

#ifndef BAYESLSH_CANDGEN_CANDIDATES_H_
#define BAYESLSH_CANDGEN_CANDIDATES_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace bayeslsh {

// An unordered-unique list of candidate pairs (a < b in every pair).
struct CandidateList {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;

  // Pairs emitted before deduplication (LSH emits one copy per colliding
  // band). Equal to pairs.size() for generators that are duplicate-free.
  uint64_t raw_emitted = 0;

  uint64_t size() const { return pairs.size(); }
};

// Sorts pair keys, removes duplicates, and converts to a CandidateList.
// Consumes (and frees) the keys vector. Keys encode (a << 32) | b.
CandidateList DedupPairKeys(std::vector<uint64_t>&& keys);

}  // namespace bayeslsh

#endif  // BAYESLSH_CANDGEN_CANDIDATES_H_
