// AllPairs (Bayardo, Ma & Srikant, WWW 2007) for cosine similarity on
// real-valued vectors — the paper's exact state-of-the-art baseline and one
// of the two candidate generators fed to BayesLSH.
//
// Sketch: rows are L2-normalized, so cosine(x, y) = dot(x, y). Dimensions
// are processed in decreasing document-frequency order and vectors in
// decreasing max-weight order. For each vector, a prefix of its features is
// withheld from the inverted index: feature f can stay unindexed as long as
// the running bound
//
//     b = Σ_(features so far) min(maxweight_dim(V), maxweight(x)) · x[f]
//
// stays below the threshold t. Any later probe vector z (which has
// maxweight(z) <= maxweight(x)) satisfies dot(z, prefix(x)) <= b < t, so a
// pair that shares *no indexed feature* cannot reach the threshold — making
// candidate generation from the partial index exact. Verification adds the
// accumulated indexed score A[y] to an exact dot with the unindexed prefix,
// guarded by an upper-bound test.
//
// (We deliberately omit Bayardo's `remscore` candidate-admission heuristic;
// see DESIGN.md §6 — the partial-index bound above is the one we can prove
// exact, and exactness of this module is load-bearing for every speedup
// table.)
//
// Two modes:
//   * AllPairsJoin        — the exact join (generation + internal verify),
//   * AllPairsCandidates  — emit the candidate pairs (everything admitted to
//                           the score accumulator) *without* verification;
//                           this is the candidate feed for AP+BayesLSH.
//
// Binary cosine reuses this module on BinarizeNormalized(data). Binary
// Jaccard uses candgen/prefix_filter_join.h instead.

#ifndef BAYESLSH_CANDGEN_ALLPAIRS_H_
#define BAYESLSH_CANDGEN_ALLPAIRS_H_

#include <cstdint>
#include <vector>

#include "candgen/candidates.h"
#include "common/thread_pool.h"
#include "sim/brute_force.h"
#include "vec/dataset.h"

namespace bayeslsh {

// Instrumentation shared by both modes.
struct AllPairsStats {
  uint64_t candidates = 0;        // Pairs admitted to the accumulator.
  uint64_t ubound_pruned = 0;     // Candidates killed by the upper bound.
  uint64_t exact_verified = 0;    // Candidates that needed an exact dot.
  uint64_t indexed_entries = 0;   // Size of the partial inverted index.
};

// Exact all-pairs cosine join: all pairs (i < j) with dot >= threshold.
// Rows of `data` must be L2-normalized. threshold must be in (0, 1].
//
// Both modes run in two phases (build the full index bound-split first,
// then probe every vector against entries indexed before it), which lets a
// pool shard the probe loop over row ranges with per-worker accumulators;
// results are identical for any thread count, including none.
std::vector<ScoredPair> AllPairsJoin(const Dataset& data, double threshold,
                                     AllPairsStats* stats = nullptr,
                                     ThreadPool* pool = nullptr);

// Candidate-only mode: emits every pair admitted to the accumulator.
CandidateList AllPairsCandidates(const Dataset& data, double threshold,
                                 AllPairsStats* stats = nullptr,
                                 ThreadPool* pool = nullptr);

}  // namespace bayeslsh

#endif  // BAYESLSH_CANDGEN_ALLPAIRS_H_
