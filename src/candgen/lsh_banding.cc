#include "candgen/lsh_banding.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/bit_ops.h"
#include "common/prng.h"
#include "euclidean/pstable_hasher.h"
#include "lsh/srp_hasher.h"

namespace bayeslsh {

uint32_t DeriveNumBands(double collision_prob_at_threshold, uint32_t k,
                        double fn_rate, uint32_t max_bands) {
  assert(k > 0);
  assert(fn_rate > 0.0 && fn_rate < 1.0);
  const double p = std::clamp(collision_prob_at_threshold, 0.0, 1.0);
  const double band_hit = std::pow(p, static_cast<double>(k));
  if (band_hit >= 1.0) return 1;
  if (band_hit <= 0.0) return max_bands;
  const double l = std::ceil(std::log(fn_rate) / std::log1p(-band_hit));
  if (l < 1.0) return 1;
  if (l > static_cast<double>(max_bands)) return max_bands;
  return static_cast<uint32_t>(l);
}

BandingShape ResolveBandingShape(Measure measure, double threshold,
                                 const LshBandingParams& params) {
  const bool cosine = measure == Measure::kCosine ||
                      measure == Measure::kBinaryCosine ||
                      measure == Measure::kKernelCosine;
  const bool euclidean = measure == Measure::kEuclidean;
  BandingShape shape;
  shape.hashes_per_band =
      params.hashes_per_band != 0 ? params.hashes_per_band
      : cosine                    ? kDefaultCosineBandBits
      : euclidean                 ? kDefaultEuclideanBandInts
                                  : kDefaultJaccardBandInts;
  // Per-hash collision probability at the threshold. Jaccard and weighted
  // Jaccard share Pr[collision] = t; Euclidean uses the serving stack's
  // width convention w = 2 * radius, under which p(radius) is a scale-free
  // constant of the w/c ratio.
  const double p = cosine ? CosineToSrpR(threshold)
                   : euclidean
                       ? PstableCollisionProb(threshold, 2.0 * threshold)
                       : threshold;
  shape.num_bands = params.num_bands != 0
                        ? params.num_bands
                        : DeriveNumBands(p, shape.hashes_per_band,
                                         params.expected_fn_rate,
                                         params.max_bands);
  return shape;
}

namespace {

// Concatenates per-shard key vectors in shard order and deduplicates.
CandidateList MergeShardKeys(std::vector<std::vector<uint64_t>>&& shard_keys) {
  size_t total = 0;
  for (const auto& keys : shard_keys) total += keys.size();
  std::vector<uint64_t> all;
  all.reserve(total);
  for (auto& keys : shard_keys) {
    all.insert(all.end(), keys.begin(), keys.end());
  }
  shard_keys.clear();
  return DedupPairKeys(std::move(all));
}

// Groups (band_key, row) tuples and emits all intra-bucket pairs.
// `entries` is keyed per band; sorted grouping avoids hash-map overhead.
void EmitBucketPairs(std::vector<std::pair<uint64_t, uint32_t>>& entries,
                     std::vector<uint64_t>* keys) {
  std::sort(entries.begin(), entries.end());
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i + 1;
    while (j < entries.size() && entries[j].first == entries[i].first) ++j;
    for (size_t a = i; a < j; ++a) {
      for (size_t b = a + 1; b < j; ++b) {
        const uint32_t ra = entries[a].second, rb = entries[b].second;
        keys->push_back(ra < rb ? PairKey(ra, rb) : PairKey(rb, ra));
      }
    }
    i = j;
  }
}

}  // namespace

CandidateList CosineLshCandidates(BitSignatureStore* store, double threshold,
                                  const LshBandingParams& params,
                                  ThreadPool* pool) {
  const auto [k, l] = ResolveBandingShape(Measure::kCosine, threshold,
                                          params);
  assert(k <= 64);
  const uint32_t n = store->num_rows();
  if (pool != nullptr && pool->num_threads() > 1) {
    store->AddBitsComputed(ParallelReduce(
        pool, n, uint64_t{0},
        [&](uint32_t, uint64_t b, uint64_t e) {
          uint64_t work = 0;
          for (uint64_t row = b; row < e; ++row) {
            work += store->EnsureBitsUncounted(static_cast<uint32_t>(row),
                                               l * k);
          }
          return work;
        },
        [](uint64_t x, uint64_t y) { return x + y; }));
  } else {
    store->EnsureAllBits(l * k);
  }

  const uint32_t num_shards =
      pool != nullptr ? pool->num_threads() : 1u;
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  auto build_bands = [&](uint32_t shard, uint64_t band_begin,
                         uint64_t band_end) {
    std::vector<std::pair<uint64_t, uint32_t>> entries;
    entries.reserve(n);
    auto& keys = shard_keys[shard];
    for (uint64_t band = band_begin; band < band_end; ++band) {
      entries.clear();
      for (uint32_t row = 0; row < n; ++row) {
        // Empty rows have similarity 0 to everything (including each other,
        // by this library's conventions) and are never candidates.
        if (store->data()->RowLength(row) == 0) continue;
        const uint64_t sig =
            ExtractBits(store->Words(row), store->NumBits(row) / kBitsPerWord,
                        static_cast<uint32_t>(band) * k, k);
        entries.emplace_back(sig, row);
      }
      EmitBucketPairs(entries, &keys);
    }
  };
  if (pool != nullptr) {
    pool->RunShards(l, build_bands);
  } else {
    build_bands(0, 0, l);
  }
  return MergeShardKeys(std::move(shard_keys));
}

CandidateList JaccardLshCandidates(IntSignatureStore* store, double threshold,
                                   const LshBandingParams& params,
                                   ThreadPool* pool) {
  const auto [k, l] = ResolveBandingShape(Measure::kJaccard, threshold,
                                          params);
  const uint32_t n = store->num_rows();
  if (pool != nullptr && pool->num_threads() > 1) {
    store->AddHashesComputed(ParallelReduce(
        pool, n, uint64_t{0},
        [&](uint32_t, uint64_t b, uint64_t e) {
          uint64_t work = 0;
          for (uint64_t row = b; row < e; ++row) {
            work += store->EnsureHashesUncounted(static_cast<uint32_t>(row),
                                                 l * k);
          }
          return work;
        },
        [](uint64_t x, uint64_t y) { return x + y; }));
  } else {
    store->EnsureAllHashes(l * k);
  }

  const uint32_t num_shards =
      pool != nullptr ? pool->num_threads() : 1u;
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  auto build_bands = [&](uint32_t shard, uint64_t band_begin,
                         uint64_t band_end) {
    std::vector<std::pair<uint64_t, uint32_t>> entries;
    entries.reserve(n);
    auto& keys = shard_keys[shard];
    for (uint64_t band = band_begin; band < band_end; ++band) {
      entries.clear();
      for (uint32_t row = 0; row < n; ++row) {
        if (store->data()->RowLength(row) == 0) continue;  // See above.
        const uint32_t* h = store->Hashes(row) + band * k;
        // Collapse the k minhash values into one bucket key.
        uint64_t sig = Mix64(0x5ba3d9be1e4fULL, band);
        for (uint32_t i = 0; i < k; ++i) sig = Mix64(sig, h[i]);
        entries.emplace_back(sig, row);
      }
      EmitBucketPairs(entries, &keys);
    }
  };
  if (pool != nullptr) {
    pool->RunShards(l, build_bands);
  } else {
    build_bands(0, 0, l);
  }
  return MergeShardKeys(std::move(shard_keys));
}

}  // namespace bayeslsh
