// Multi-probe LSH candidate generation (after Lv, Josephson, Wang,
// Charikar & Li, VLDB'07 — the paper's reference [17]).
//
// Classical banding needs l independent bands to reach a target recall;
// the index memory and hashing work scale with l. Multi-probe keeps each
// band but *probes* additional buckets whose signature is close to the
// query's, trading lookup work for bands: with bit signatures (our SRP
// bands) the natural probe set is every signature within Hamming distance
// <= probe_radius of the row's own signature, since near-misses of a
// similar pair differ in few bit positions.
//
// (Lv et al. probe quantized p-stable coordinates by ±1 steps; the
// Hamming-ball probe set is the established adaptation of their idea to
// bit signatures — each probed bucket is exactly one "step" away in the
// signature lattice. DESIGN.md records this substitution.)
//
// A pair is generated when its signatures in some band differ in at most
// probe_radius positions. The per-band hit probability at similarity
// threshold t is therefore binomial instead of p^k:
//
//     hit(p, k, r) = Σ_{i=0}^{r} C(k, i) p^{k-i} (1 - p)^i,
//
// with p = c2r(t), and the band count derives as
// l = ceil(log ε / log(1 - hit)) — fewer bands for the same ε as r grows.
//
// The generator is a drop-in alternative to CosineLshCandidates; the
// verification stage is unchanged (BayesLSH does not care where candidates
// come from — the paper's modularity claim).

#ifndef BAYESLSH_CANDGEN_MULTIPROBE_H_
#define BAYESLSH_CANDGEN_MULTIPROBE_H_

#include <cstdint>

#include "candgen/candidates.h"
#include "common/thread_pool.h"
#include "lsh/signature_store.h"

namespace bayeslsh {

struct MultiProbeParams {
  // Hashes per band (k); 0 selects the cosine default (8 bits).
  uint32_t hashes_per_band = 0;

  // Bands (l); 0 derives from expected_fn_rate at the threshold, with the
  // probe radius accounted for.
  uint32_t num_bands = 0;

  // Hamming radius probed within each band. 0 reduces to plain banding;
  // radius r costs sum_{i<=r} C(k, i) lookups per row per band.
  uint32_t probe_radius = 1;

  double expected_fn_rate = 0.03;
  uint32_t max_bands = 4096;
};

// Per-band hit probability with probing: Pr[<= probe_radius of k bits
// disagree] when each bit agrees independently with probability
// collision_prob.
double MultiProbeBandHitProb(double collision_prob, uint32_t k,
                             uint32_t probe_radius);

// l = ceil(log eps / log(1 - hit)), clamped to [1, max_bands].
uint32_t DeriveNumBandsMultiProbe(double collision_prob_at_threshold,
                                  uint32_t k, uint32_t probe_radius,
                                  double fn_rate, uint32_t max_bands);

// Candidate pairs for cosine similarity: multi-probe banding over SRP bit
// signatures. Grows the store to num_bands * hashes_per_band bits for
// every row. raw_emitted counts bucket-pair emissions before dedup.
//
// A non-null pool shards the work band-by-band (bands are independent:
// each sorts its own signature table and probes within it); per-band
// emissions are merged in band order and deduped exactly as in the
// sequential run, so the candidate list is bit-identical for any thread
// count.
CandidateList MultiProbeCosineCandidates(BitSignatureStore* store,
                                         double threshold,
                                         const MultiProbeParams& params,
                                         ThreadPool* pool = nullptr);

}  // namespace bayeslsh

#endif  // BAYESLSH_CANDGEN_MULTIPROBE_H_
