#include "candgen/allpairs.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/bit_ops.h"

namespace bayeslsh {

namespace {

// One feature of a reordered row.
struct Feature {
  uint32_t rank;  // Dimension rank: 0 = most frequent dimension.
  float weight;
};

// Dataset reorganized for AllPairs processing.
struct Reordered {
  // For each processing position p (0 = largest maxweight), the original
  // row id and its features sorted by increasing rank.
  std::vector<uint32_t> orig_id;
  std::vector<std::vector<Feature>> rows;
  std::vector<float> row_maxweight;   // By processing position.
  std::vector<double> row_l1;         // L1 norm, by processing position.
  std::vector<float> rank_maxweight;  // maxweight of each dim, by rank.
};

Reordered Reorder(const Dataset& data, ThreadPool* pool) {
  Reordered r;
  const uint32_t n = data.num_vectors();
  const uint32_t d = data.num_dims();

  // Rank dimensions by decreasing document frequency.
  const std::vector<uint32_t> freq = data.DimFrequencies();
  std::vector<uint32_t> dims_by_freq(d);
  std::iota(dims_by_freq.begin(), dims_by_freq.end(), 0u);
  std::sort(dims_by_freq.begin(), dims_by_freq.end(),
            [&](uint32_t a, uint32_t b) {
              return freq[a] != freq[b] ? freq[a] > freq[b] : a < b;
            });
  std::vector<uint32_t> rank_of(d);
  for (uint32_t i = 0; i < d; ++i) rank_of[dims_by_freq[i]] = i;

  const std::vector<float> dim_maxw = data.DimMaxWeights();
  r.rank_maxweight.resize(d);
  for (uint32_t i = 0; i < d; ++i) {
    r.rank_maxweight[i] = dim_maxw[dims_by_freq[i]];
  }

  // Order vectors by decreasing maxweight (ties by id for determinism).
  std::vector<float> maxw(n);
  for (uint32_t i = 0; i < n; ++i) maxw[i] = SparseMaxWeight(data.Row(i));
  r.orig_id.resize(n);
  std::iota(r.orig_id.begin(), r.orig_id.end(), 0u);
  std::sort(r.orig_id.begin(), r.orig_id.end(), [&](uint32_t a, uint32_t b) {
    return maxw[a] != maxw[b] ? maxw[a] > maxw[b] : a < b;
  });

  r.rows.resize(n);
  r.row_maxweight.resize(n);
  r.row_l1.resize(n);
  ParallelFor(pool, 0, n, [&](uint64_t p) {
    const uint32_t id = r.orig_id[p];
    const SparseVectorView v = data.Row(id);
    auto& row = r.rows[p];
    row.resize(v.size());
    for (uint32_t k = 0; k < v.size(); ++k) {
      row[k] = {rank_of[v.indices[k]], v.values[k]};
    }
    std::sort(row.begin(), row.end(),
              [](const Feature& a, const Feature& b) {
                return a.rank < b.rank;
              });
    r.row_maxweight[p] = maxw[id];
    double l1 = 0.0;
    for (const Feature& f : row) l1 += std::abs(f.weight);
    r.row_l1[p] = l1;
  });
  return r;
}

// Dot product of a full reordered row with a prefix [0, len) of another.
double PrefixDot(const std::vector<Feature>& x,
                 const std::vector<Feature>& y, uint32_t y_len) {
  double acc = 0.0;
  uint32_t i = 0, j = 0;
  while (i < x.size() && j < y_len) {
    if (x[i].rank == y[j].rank) {
      acc += static_cast<double>(x[i].weight) * y[j].weight;
      ++i;
      ++j;
    } else if (x[i].rank < y[j].rank) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

struct IndexEntry {
  uint32_t pos;  // Processing position of the indexed vector.
  float weight;
};

// Core of both modes, in two phases so the probe loop can shard over row
// ranges. If `out_matches` is non-null runs the exact join; if
// `out_candidates` is non-null collects candidate pairs (original ids).
//
// Phase 1 computes each row's unindexed-prefix split (a per-row property)
// and builds the *full* inverted index over every row's indexed suffix, in
// processing order — so each per-rank posting list is sorted by position.
// Phase 2 probes each row p against the entries with pos < p (an early
// break on the sorted lists), which is exactly the partial index the
// classical interleaved formulation would have had at step p; candidate
// sets, accumulators, and verification results are identical.
void AllPairsCore(const Dataset& data, double threshold,
                  std::vector<ScoredPair>* out_matches,
                  std::vector<uint64_t>* out_candidates,
                  AllPairsStats* stats, ThreadPool* pool) {
  assert(threshold > 0.0);
  const uint32_t n = data.num_vectors();
  Reordered r = Reorder(data, pool);

  // --- Phase 1a: per-row prefix split (independent rows). ---
  std::vector<uint32_t> prefix_len(n, 0);
  // L1 norm of the unindexed prefix of each processed vector.
  std::vector<double> prefix_l1(n, 0.0);
  ParallelFor(pool, 0, n, [&](uint64_t p) {
    const std::vector<Feature>& x = r.rows[p];
    const float x_maxw = r.row_maxweight[p];
    double b = 0.0;
    double l1 = 0.0;
    uint32_t k = 0;
    for (; k < x.size(); ++k) {
      b += std::min(r.rank_maxweight[x[k].rank], x_maxw) *
           static_cast<double>(std::abs(x[k].weight));
      if (b >= threshold) break;
      l1 += std::abs(x[k].weight);
    }
    prefix_len[p] = k;
    prefix_l1[p] = l1;
  });

  // --- Phase 1b: full index over indexed suffixes, in position order. ---
  AllPairsStats local;
  std::vector<std::vector<IndexEntry>> index(data.num_dims());
  for (uint32_t p = 0; p < n; ++p) {
    const std::vector<Feature>& x = r.rows[p];
    for (uint32_t k = prefix_len[p]; k < x.size(); ++k) {
      index[x[k].rank].push_back({p, x[k].weight});
      ++local.indexed_entries;
    }
  }

  // --- Phase 2: probe, sharded over probe rows. ---
  const uint32_t num_shards = pool != nullptr ? pool->num_threads() : 1u;
  struct ProbeShard {
    std::vector<uint64_t> keys;
    std::vector<ScoredPair> matches;
    uint64_t candidates = 0;
    uint64_t ubound_pruned = 0;
    uint64_t exact_verified = 0;
  };
  std::vector<ProbeShard> shards(num_shards);
  auto probe = [&](uint32_t shard, uint64_t p_begin, uint64_t p_end) {
    ProbeShard& sh = shards[shard];
    std::vector<double> acc(n, 0.0);
    std::vector<uint32_t> stamp(n, UINT32_MAX);
    std::vector<uint32_t> touched;
    for (uint32_t p = static_cast<uint32_t>(p_begin); p < p_end; ++p) {
      const std::vector<Feature>& x = r.rows[p];
      const float x_maxw = r.row_maxweight[p];
      const double x_l1 = r.row_l1[p];

      // Find-Matches: probe the entries indexed before p.
      touched.clear();
      for (const Feature& f : x) {
        for (const IndexEntry& e : index[f.rank]) {
          if (e.pos >= p) break;  // Lists are sorted by position.
          if (stamp[e.pos] != p) {
            stamp[e.pos] = p;
            acc[e.pos] = 0.0;
            touched.push_back(e.pos);
          }
          acc[e.pos] += static_cast<double>(f.weight) * e.weight;
        }
      }
      sh.candidates += touched.size();

      if (out_candidates != nullptr) {
        for (uint32_t q : touched) {
          const uint32_t a = r.orig_id[q], b = r.orig_id[p];
          sh.keys.push_back(a < b ? PairKey(a, b) : PairKey(b, a));
        }
      }
      if (out_matches != nullptr) {
        for (uint32_t q : touched) {
          // Upper bound on the unindexed-prefix contribution.
          const double rest =
              std::min(static_cast<double>(x_maxw) * prefix_l1[q],
                       r.row_maxweight[q] * x_l1);
          if (acc[q] + rest < threshold) {
            ++sh.ubound_pruned;
            continue;
          }
          ++sh.exact_verified;
          const double s = acc[q] + PrefixDot(x, r.rows[q], prefix_len[q]);
          if (s >= threshold) {
            const uint32_t a = r.orig_id[q], b = r.orig_id[p];
            sh.matches.push_back(a < b ? ScoredPair{a, b, s}
                                       : ScoredPair{b, a, s});
          }
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->RunShards(n, probe);
  } else {
    probe(0, 0, n);
  }

  // Merge in shard order == processing order.
  for (ProbeShard& sh : shards) {
    if (out_candidates != nullptr) {
      out_candidates->insert(out_candidates->end(), sh.keys.begin(),
                             sh.keys.end());
    }
    if (out_matches != nullptr) {
      out_matches->insert(out_matches->end(), sh.matches.begin(),
                          sh.matches.end());
    }
    local.candidates += sh.candidates;
    local.ubound_pruned += sh.ubound_pruned;
    local.exact_verified += sh.exact_verified;
  }
  if (stats != nullptr) *stats = local;
}

}  // namespace

std::vector<ScoredPair> AllPairsJoin(const Dataset& data, double threshold,
                                     AllPairsStats* stats, ThreadPool* pool) {
  std::vector<ScoredPair> matches;
  AllPairsCore(data, threshold, &matches, nullptr, stats, pool);
  std::sort(matches.begin(), matches.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.a != b.a ? a.a < b.a : a.b < b.b;
            });
  return matches;
}

CandidateList AllPairsCandidates(const Dataset& data, double threshold,
                                 AllPairsStats* stats, ThreadPool* pool) {
  std::vector<uint64_t> keys;
  AllPairsCore(data, threshold, nullptr, &keys, stats, pool);
  return DedupPairKeys(std::move(keys));
}

}  // namespace bayeslsh
