// Prefix-filtering exact join for binary vectors — the AllPairs adaptation
// used for the paper's "Binary, Jaccard" experiments (AP columns of
// Table 2 / Figure 3(g)-(i)).
//
// Tokens are ranked by increasing document frequency (rare first); rows are
// processed in increasing size order. For a Jaccard threshold t:
//
//   * size filter: a pair (y, x) with |y| <= |x| can only qualify if
//     |y| >= t |x|;
//   * prefix filter: x's "prefix" is its first |x| - ceil(t |x|) + 1 tokens;
//     qualifying pairs must share at least one token lying in both rows'
//     prefixes, so only prefixes are indexed and probed.
//
// For binary cosine the same structure holds with t^2 in place of t.
// Survivors are verified by an exact merge.
//
// Like AllPairs, it offers an exact-join mode and a candidate-emit mode
// (the feed for AP+BayesLSH on binary Jaccard data).

#ifndef BAYESLSH_CANDGEN_PREFIX_FILTER_JOIN_H_
#define BAYESLSH_CANDGEN_PREFIX_FILTER_JOIN_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "candgen/candidates.h"
#include "common/thread_pool.h"
#include "sim/brute_force.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

struct PrefixJoinStats {
  uint64_t candidates = 0;      // Distinct pairs reaching verification.
  uint64_t size_skipped = 0;    // Posting entries skipped by the size filter.
  uint64_t verified = 0;        // Exact merges performed.
};

// Exact join over the index sets of `data` (values are ignored).
// `measure` must be kJaccard or kBinaryCosine; threshold in (0, 1].
//
// Two-phase like AllPairs: the full prefix index is built first, then the
// probe loop shards over row ranges (per-worker accumulators and size-
// filter fronts); output is identical for any thread count. The
// `size_skipped` instrumentation counter is the exception: per-worker
// fronts re-skip undersized entries, so it can overcount under sharding.
std::vector<ScoredPair> PrefixFilterJoin(const Dataset& data,
                                         double threshold, Measure measure,
                                         PrefixJoinStats* stats = nullptr,
                                         ThreadPool* pool = nullptr);

// Candidate-emit mode: all pairs passing the size + prefix filters.
CandidateList PrefixFilterCandidates(const Dataset& data, double threshold,
                                     Measure measure,
                                     PrefixJoinStats* stats = nullptr,
                                     ThreadPool* pool = nullptr);

// Conservative integer ceilings for filter arithmetic: never larger than the
// exact mathematical ceiling, so filters only err on the safe (admit) side.
inline uint32_t CeilSafe(double v) {
  const double c = std::ceil(v - 1e-9);
  return c <= 0.0 ? 0u : static_cast<uint32_t>(c);
}

}  // namespace bayeslsh

#endif  // BAYESLSH_CANDGEN_PREFIX_FILTER_JOIN_H_
