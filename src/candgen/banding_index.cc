#include "candgen/banding_index.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/bit_ops.h"
#include "common/prng.h"
#include "lsh/minwise_hasher.h"
#include "lsh/signature_store.h"
#include "lsh/srp_hasher.h"
#include "vec/binary_io.h"

namespace bayeslsh {

namespace {

// Seeds the per-band Mix64 key chain so identical hash runs in different
// bands do not alias to the same bucket key.
constexpr uint64_t kJaccardBandSalt = 0x5ba3d9be1e4fULL;

}  // namespace

uint64_t BandingIndex::CosineKey(const uint64_t* words, uint32_t num_words,
                                 uint32_t band, uint32_t k) {
  return ExtractBits(words, num_words, band * k, k);
}

uint64_t BandingIndex::JaccardKey(const uint32_t* ints, uint32_t band,
                                  uint32_t k) {
  uint64_t key = Mix64(kJaccardBandSalt, band);
  for (uint32_t i = 0; i < k; ++i) key = Mix64(key, ints[band * k + i]);
  return key;
}

BandingIndex BandingIndex::BuildBits(
    const Dataset& data, std::shared_ptr<const WordChunkHasher> hasher,
    uint32_t k, uint32_t l, ThreadPool* pool) {
  BandingIndex index;
  index.hashes_per_band_ = k;
  index.bands_.resize(l);
  const uint32_t n = data.num_vectors();
  // Throwaway generation-seed store: banding hashes are never reused for
  // verification (DESIGN.md §6).
  BitSignatureStore store(&data, std::move(hasher));
  if (pool != nullptr) {
    ParallelFor(pool, 0, n, [&](uint64_t row) {
      store.EnsureBitsUncounted(static_cast<uint32_t>(row), l * k);
    });
  } else {
    store.EnsureAllBits(l * k);
  }
  ParallelFor(pool, 0, l, [&](uint64_t band) {
    for (uint32_t row = 0; row < n; ++row) {
      if (data.RowLength(row) == 0) continue;
      const uint64_t key =
          CosineKey(store.Words(row), store.NumBits(row) / kBitsPerWord,
                    static_cast<uint32_t>(band), k);
      index.bands_[band][key].push_back(row);
    }
  });
  return index;
}

BandingIndex BandingIndex::BuildInts(
    const Dataset& data, std::shared_ptr<const IntChunkHasher> hasher,
    uint32_t k, uint32_t l, ThreadPool* pool) {
  BandingIndex index;
  index.hashes_per_band_ = k;
  index.bands_.resize(l);
  const uint32_t n = data.num_vectors();
  IntSignatureStore store(&data, std::move(hasher));
  if (pool != nullptr) {
    ParallelFor(pool, 0, n, [&](uint64_t row) {
      store.EnsureHashesUncounted(static_cast<uint32_t>(row), l * k);
    });
  } else {
    store.EnsureAllHashes(l * k);
  }
  ParallelFor(pool, 0, l, [&](uint64_t band) {
    for (uint32_t row = 0; row < n; ++row) {
      if (data.RowLength(row) == 0) continue;
      const uint64_t key =
          JaccardKey(store.Hashes(row), static_cast<uint32_t>(band), k);
      index.bands_[band][key].push_back(row);
    }
  });
  return index;
}

BandingIndex BandingIndex::BuildCosine(const Dataset& data,
                                       const GaussianSource* gauss,
                                       uint32_t k, uint32_t l,
                                       ThreadPool* pool) {
  return BuildBits(data, std::make_shared<SrpChunkHasher>(SrpHasher(gauss)),
                   k, l, pool);
}

BandingIndex BandingIndex::BuildJaccard(const Dataset& data,
                                        uint64_t gen_seed, uint32_t k,
                                        uint32_t l, ThreadPool* pool) {
  return BuildInts(data,
                   std::make_shared<MinwiseChunkHasher>(
                       MinwiseHasher(gen_seed)),
                   k, l, pool);
}

void BandingIndex::InsertBits(const SparseVectorView& v, uint32_t row,
                              const WordChunkHasher& hasher) {
  assert(!bands_.empty() && hashes_per_band_ != 0);
  if (v.empty()) return;
  const uint32_t l = num_bands();
  const uint32_t k = hashes_per_band_;
  std::vector<uint64_t> words(WordsForBits(l * k));
  for (uint32_t c = 0; c < words.size(); ++c) {
    words[c] = hasher.HashChunk(v, row, c);
  }
  for (uint32_t band = 0; band < l; ++band) {
    bands_[band][CosineKey(words.data(), static_cast<uint32_t>(words.size()),
                           band, k)]
        .push_back(row);
  }
}

void BandingIndex::InsertInts(const SparseVectorView& v, uint32_t row,
                              const IntChunkHasher& hasher) {
  assert(!bands_.empty() && hashes_per_band_ != 0);
  if (v.empty()) return;
  const uint32_t l = num_bands();
  const uint32_t k = hashes_per_band_;
  const uint32_t chunk_ints = hasher.chunk_ints();
  const uint32_t chunks = (l * k + chunk_ints - 1) / chunk_ints;
  std::vector<uint32_t> ints(chunks * chunk_ints);
  for (uint32_t c = 0; c < chunks; ++c) {
    hasher.HashChunk(v, row, c, ints.data() + c * chunk_ints);
  }
  for (uint32_t band = 0; band < l; ++band) {
    bands_[band][JaccardKey(ints.data(), band, k)].push_back(row);
  }
}

void BandingIndex::InsertCosine(const SparseVectorView& v, uint32_t row,
                                const GaussianSource* gauss) {
  InsertBits(v, row, SrpChunkHasher(SrpHasher(gauss)));
}

void BandingIndex::InsertJaccard(const SparseVectorView& v, uint32_t row,
                                 uint64_t gen_seed) {
  InsertInts(v, row, MinwiseChunkHasher(MinwiseHasher(gen_seed)));
}

void BandingIndex::Save(std::ostream& out) const {
  WritePod(out, num_bands());
  WritePod(out, hashes_per_band_);
  std::vector<uint64_t> keys;
  std::vector<uint32_t> counts;
  std::vector<uint32_t> rows;
  for (const Buckets& band : bands_) {
    keys.clear();
    keys.reserve(band.size());
    for (const auto& [key, bucket] : band) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    counts.clear();
    rows.clear();
    for (const uint64_t key : keys) {
      const std::vector<uint32_t>& bucket = band.at(key);
      counts.push_back(static_cast<uint32_t>(bucket.size()));
      rows.insert(rows.end(), bucket.begin(), bucket.end());
    }
    WritePod(out, static_cast<uint64_t>(keys.size()));
    WritePod(out, static_cast<uint64_t>(rows.size()));
    WritePodVec(out, keys);
    WritePodVec(out, counts);
    WritePodVec(out, rows);
  }
  if (!out) throw IoError("banding section: stream write failed");
}

BandingIndex BandingIndex::Load(std::istream& in, uint32_t num_rows) {
  BandingIndex index;
  const auto l = ReadPod<uint32_t>(in, "banding section: num_bands");
  index.hashes_per_band_ =
      ReadPod<uint32_t>(in, "banding section: hashes_per_band");
  if (l == 0 || index.hashes_per_band_ == 0 ||
      index.hashes_per_band_ > 64) {
    throw IoError("banding section: implausible shape");
  }
  // Every band carries at least its two u64 counts, so a corrupt band
  // count cannot exceed the bytes remaining — checked before the resize so
  // garbage can never trigger a huge allocation (cf. vec/binary_io.h).
  if (l > RemainingBytes(in) / (2 * sizeof(uint64_t))) {
    throw IoError("banding section: band count exceeds remaining bytes");
  }
  index.bands_.resize(l);
  std::vector<uint64_t> keys;
  std::vector<uint32_t> counts;
  std::vector<uint32_t> rows;
  for (uint32_t b = 0; b < l; ++b) {
    const auto num_keys =
        ReadPod<uint64_t>(in, "banding section: bucket count");
    const auto num_entries =
        ReadPod<uint64_t>(in, "banding section: entry count");
    ReadPodVec(in, &keys, num_keys, "banding section: keys");
    ReadPodVec(in, &counts, num_keys, "banding section: counts");
    ReadPodVec(in, &rows, num_entries, "banding section: rows");
    uint64_t total = 0;
    for (const uint32_t c : counts) {
      if (c == 0) throw IoError("banding section: empty bucket");
      total += c;
    }
    if (total != num_entries) {
      throw IoError("banding section: bucket counts do not sum to the "
                    "entry count");
    }
    for (const uint32_t row : rows) {
      if (row >= num_rows) {
        throw IoError("banding section: row id " + std::to_string(row) +
                      " out of range");
      }
    }
    Buckets& band = index.bands_[b];
    band.reserve(num_keys);
    const uint32_t* next = rows.data();
    for (uint64_t i = 0; i < num_keys; ++i) {
      if (i > 0 && keys[i] <= keys[i - 1]) {
        throw IoError("banding section: keys not strictly ascending");
      }
      band.emplace(keys[i],
                   std::vector<uint32_t>(next, next + counts[i]));
      next += counts[i];
    }
  }
  return index;
}

}  // namespace bayeslsh
