#include "vec/transforms.h"

#include <cmath>
#include <vector>

namespace bayeslsh {

Dataset TfIdfTransform(const Dataset& in) {
  const uint32_t n = in.num_vectors();
  const std::vector<uint32_t> df = in.DimFrequencies();
  std::vector<double> idf(df.size(), 0.0);
  for (size_t d = 0; d < df.size(); ++d) {
    if (df[d] > 0) idf[d] = std::log(static_cast<double>(n) / df[d]);
  }
  DatasetBuilder out(in.num_dims());
  std::vector<std::pair<DimId, float>> row;
  for (uint32_t i = 0; i < n; ++i) {
    const SparseVectorView v = in.Row(i);
    row.clear();
    row.reserve(v.size());
    for (uint32_t k = 0; k < v.size(); ++k) {
      const double w = v.values[k] * idf[v.indices[k]];
      if (w != 0.0) row.emplace_back(v.indices[k], static_cast<float>(w));
    }
    out.AddRow(row);
  }
  return std::move(out).Build();
}

Dataset L2NormalizeRows(const Dataset& in) {
  const uint32_t n = in.num_vectors();
  std::vector<uint64_t> indptr = in.indptr();
  std::vector<DimId> indices = in.indices();
  std::vector<float> values = in.values();
  for (uint32_t i = 0; i < n; ++i) {
    double norm_sq = 0.0;
    for (uint64_t k = indptr[i]; k < indptr[i + 1]; ++k) {
      norm_sq += static_cast<double>(values[k]) * values[k];
    }
    if (norm_sq <= 0.0) continue;
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (uint64_t k = indptr[i]; k < indptr[i + 1]; ++k) {
      values[k] = static_cast<float>(values[k] * inv);
    }
  }
  return Dataset(in.num_dims(), std::move(indptr), std::move(indices),
                 std::move(values));
}

Dataset Binarize(const Dataset& in) {
  std::vector<float> values(in.nnz(), 1.0f);
  return Dataset(in.num_dims(), in.indptr(), in.indices(), std::move(values));
}

Dataset BinarizeNormalized(const Dataset& in) {
  return L2NormalizeRows(Binarize(in));
}

}  // namespace bayeslsh
