// Sparse vector views and element-wise kernels.
//
// The library stores whole collections in CSR form (see vec/dataset.h);
// a SparseVectorView is a non-owning (indices, values) slice of one row.
// Indices are always strictly increasing within a row.

#ifndef BAYESLSH_VEC_SPARSE_VECTOR_H_
#define BAYESLSH_VEC_SPARSE_VECTOR_H_

#include <cstdint>
#include <span>

namespace bayeslsh {

// Feature id type. Dimensionalities in this library fit 32 bits.
using DimId = uint32_t;

// A non-owning view of one sparse vector: parallel arrays of strictly
// increasing feature ids and their (float) weights.
struct SparseVectorView {
  std::span<const DimId> indices;
  std::span<const float> values;

  uint32_t size() const { return static_cast<uint32_t>(indices.size()); }
  bool empty() const { return indices.empty(); }
};

// Dot product of two sparse vectors by sorted-merge. O(|a| + |b|).
double SparseDot(const SparseVectorView& a, const SparseVectorView& b);

// Number of shared feature ids (set overlap). O(|a| + |b|).
uint32_t SparseOverlap(const SparseVectorView& a, const SparseVectorView& b);

// Euclidean (L2) norm.
double SparseNorm2(const SparseVectorView& v);

// Euclidean distance ||a - b||, computed by sorted-merge over the union of
// supports (exact, no cancellation-prone norm identity). O(|a| + |b|).
double SparseEuclideanDistance(const SparseVectorView& a,
                               const SparseVectorView& b);

// L1 norm (sum of |values|).
double SparseNorm1(const SparseVectorView& v);

// Largest absolute weight; 0 for the empty vector.
float SparseMaxWeight(const SparseVectorView& v);

}  // namespace bayeslsh

#endif  // BAYESLSH_VEC_SPARSE_VECTOR_H_
