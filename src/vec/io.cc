#include "vec/io.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "vec/binary_io.h"

namespace bayeslsh {

namespace {

constexpr char kMagic[] = "%BayesLSH sparse 1.0";

// 8 bytes: name + version + an 'E' that a byte-swapped reader would see in
// the wrong position (endianness canary).
constexpr char kBinaryMagic[8] = {'B', 'L', 'S', 'H', 'D', 'S', '1', 'E'};

template <typename T>
void WriteRaw(std::ostream& out, const std::vector<T>& v) {
  WritePodVec(out, v);
}

template <typename T>
void ReadRaw(std::istream& in, std::vector<T>* v, size_t count,
             const char* what) {
  ReadPodVec(in, v, count, (std::string("ReadDatasetBinary: ") + what).c_str());
}

}  // namespace

void RequireReadableDataFile(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    throw IoError("cannot open " + path + ": no such file");
  }
  if (st.type() == fs::file_type::directory) {
    throw IoError("cannot read " + path + ": is a directory, not a file");
  }
  // Only regular files have a meaningful size; pipes, FIFOs and devices
  // (/dev/stdin, process substitution) pass through so stream-based
  // workflows keep working.
  if (st.type() == fs::file_type::regular) {
    const std::uintmax_t size = fs::file_size(path, ec);
    if (!ec && size == 0) {
      throw IoError("cannot read " + path + ": file is empty");
    }
  }
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    throw IoError("cannot open " + path + ": permission denied or "
                  "unreadable");
  }
}

void WriteDataset(const Dataset& d, std::ostream& out) {
  out << kMagic << "\n";
  out << d.num_vectors() << " " << d.num_dims() << "\n";
  char buf[64];
  for (uint32_t i = 0; i < d.num_vectors(); ++i) {
    const SparseVectorView v = d.Row(i);
    for (uint32_t k = 0; k < v.size(); ++k) {
      // %.9g round-trips any float exactly.
      const int len = std::snprintf(buf, sizeof(buf), "%s%u:%.9g",
                                    k == 0 ? "" : " ", v.indices[k],
                                    static_cast<double>(v.values[k]));
      out.write(buf, len);
    }
    out << "\n";
  }
  if (!out) throw IoError("WriteDataset: stream write failed");
}

void WriteDatasetFile(const Dataset& d, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw IoError("WriteDatasetFile: cannot open " + path);
  WriteDataset(d, f);
}

Dataset ReadDataset(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw IoError("ReadDataset: missing magic header");
  }
  if (!std::getline(in, line)) {
    throw IoError("ReadDataset: missing size line");
  }
  uint32_t num_vectors = 0, num_dims = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> num_vectors >> num_dims)) {
      throw IoError("ReadDataset: malformed size line: " + line);
    }
  }
  DatasetBuilder builder(num_dims);
  std::vector<std::pair<DimId, float>> row;
  for (uint32_t i = 0; i < num_vectors; ++i) {
    if (!std::getline(in, line)) {
      throw IoError("ReadDataset: unexpected end of input at row " +
                    std::to_string(i));
    }
    row.clear();
    const char* p = line.data();
    const char* end = p + line.size();
    while (p < end) {
      while (p < end && *p == ' ') ++p;
      if (p >= end) break;
      DimId dim = 0;
      auto [p1, ec1] = std::from_chars(p, end, dim);
      if (ec1 != std::errc{} || p1 >= end || *p1 != ':') {
        throw IoError("ReadDataset: malformed entry in row " +
                      std::to_string(i));
      }
      float w = 0.0f;
      auto [p2, ec2] = std::from_chars(p1 + 1, end, w);
      if (ec2 != std::errc{}) {
        throw IoError("ReadDataset: malformed weight in row " +
                      std::to_string(i));
      }
      if (dim >= num_dims) {
        throw IoError("ReadDataset: dim out of range in row " +
                      std::to_string(i));
      }
      row.emplace_back(dim, w);
      p = p2;
    }
    builder.AddRow(row);
  }
  return std::move(builder).Build();
}

Dataset ReadDatasetFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("ReadDatasetFile: cannot open " + path);
  return ReadDataset(f);
}

void WriteDatasetBinary(const Dataset& d, std::ostream& out) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const uint32_t num_dims = d.num_dims();
  const uint32_t num_vectors = d.num_vectors();
  const uint64_t nnz = d.nnz();
  out.write(reinterpret_cast<const char*>(&num_dims), sizeof(num_dims));
  out.write(reinterpret_cast<const char*>(&num_vectors),
            sizeof(num_vectors));
  out.write(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  WriteRaw(out, d.indptr());
  WriteRaw(out, d.indices());
  WriteRaw(out, d.values());
  if (!out) throw IoError("WriteDatasetBinary: stream write failed");
}

void WriteDatasetBinaryFile(const Dataset& d, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw IoError("WriteDatasetBinaryFile: cannot open " + path);
  WriteDatasetBinary(d, f);
}

Dataset ReadDatasetBinary(std::istream& in) {
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    throw IoError("ReadDatasetBinary: bad magic (not a binary dataset, or "
                  "written on an incompatible platform)");
  }
  uint32_t num_dims = 0, num_vectors = 0;
  uint64_t nnz = 0;
  in.read(reinterpret_cast<char*>(&num_dims), sizeof(num_dims));
  in.read(reinterpret_cast<char*>(&num_vectors), sizeof(num_vectors));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  if (!in) throw IoError("ReadDatasetBinary: truncated header");

  std::vector<uint64_t> indptr;
  ReadRaw(in, &indptr, static_cast<size_t>(num_vectors) + 1, "indptr");
  std::vector<DimId> indices;
  ReadRaw(in, &indices, nnz, "indices");
  std::vector<float> values;
  ReadRaw(in, &values, nnz, "values");

  // Structural validation before handing the arrays to Dataset: monotone
  // indptr ending at nnz, in-range strictly-increasing indices per row.
  if (indptr.front() != 0 || indptr.back() != nnz) {
    throw IoError("ReadDatasetBinary: corrupt indptr bounds");
  }
  for (uint32_t r = 0; r < num_vectors; ++r) {
    if (indptr[r] > indptr[r + 1]) {
      throw IoError("ReadDatasetBinary: indptr not monotone at row " +
                    std::to_string(r));
    }
    for (uint64_t e = indptr[r]; e < indptr[r + 1]; ++e) {
      if (indices[e] >= num_dims ||
          (e > indptr[r] && indices[e] <= indices[e - 1])) {
        throw IoError("ReadDatasetBinary: corrupt indices in row " +
                      std::to_string(r));
      }
    }
  }
  return Dataset(num_dims, std::move(indptr), std::move(indices),
                 std::move(values));
}

Dataset ReadDatasetBinaryFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("ReadDatasetBinaryFile: cannot open " + path);
  return ReadDatasetBinary(f);
}

Dataset ReadDatasetAutoFile(const std::string& path) {
  RequireReadableDataFile(path);
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("ReadDatasetAutoFile: cannot open " + path);
  char first = 0;
  f.get(first);
  f.seekg(0);
  if (first == kBinaryMagic[0]) return ReadDatasetBinary(f);
  return ReadDataset(f);
}

}  // namespace bayeslsh
