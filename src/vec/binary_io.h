// Low-level primitives for the project's binary on-disk formats (the
// binary dataset format in vec/io.cc and the persistent index sections in
// lsh/, candgen/ and core/index_io.cc — see docs/FORMATS.md for the byte
// layouts).
//
// All formats are host-endian with an endianness canary in their magic
// bytes; every reader throws IoError on a short read, and bulk reads are
// bounded by the bytes actually remaining in the stream before any
// allocation, so a corrupt length field cannot trigger a huge allocation.

#ifndef BAYESLSH_VEC_BINARY_IO_H_
#define BAYESLSH_VEC_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "vec/io.h"

namespace bayeslsh {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WritePodVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T ReadPod(std::istream& in, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw IoError(std::string("truncated ") + what);
  return value;
}

// Bytes left before EOF, or SIZE_MAX when the stream is not seekable.
// Used to reject corrupt length fields before allocating.
inline size_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) {
    return std::numeric_limits<size_t>::max();
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) {
    return std::numeric_limits<size_t>::max();
  }
  return static_cast<size_t>(end - here);
}

template <typename T>
void ReadPodVec(std::istream& in, std::vector<T>* v, uint64_t count,
                const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (count > RemainingBytes(in) / sizeof(T)) {
    throw IoError(std::string("truncated ") + what +
                  " (count exceeds remaining bytes)");
  }
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw IoError(std::string("truncated ") + what);
}

}  // namespace bayeslsh

#endif  // BAYESLSH_VEC_BINARY_IO_H_
