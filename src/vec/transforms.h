// Dataset-level transformations used to prepare the paper's workloads:
// tf-idf weighting, L2 normalization (cosine similarity on unit vectors is
// just a dot product), and binarization (for the Jaccard / binary-cosine
// experiments).

#ifndef BAYESLSH_VEC_TRANSFORMS_H_
#define BAYESLSH_VEC_TRANSFORMS_H_

#include "vec/dataset.h"

namespace bayeslsh {

// Replaces every weight w of dimension d by w * log(N / df(d)), where N is
// the number of vectors and df(d) the number of vectors containing d.
// Dimensions appearing in every vector get idf 0 and are dropped.
Dataset TfIdfTransform(const Dataset& in);

// Scales every row to unit L2 norm. Empty rows stay empty.
Dataset L2NormalizeRows(const Dataset& in);

// Keeps the sparsity pattern, sets every weight to 1.
Dataset Binarize(const Dataset& in);

// Binarize followed by L2 normalization: every entry of a row with L
// non-zeros becomes 1/sqrt(L). On such vectors the dot product equals the
// binary cosine similarity |x ∩ y| / sqrt(|x| |y|).
Dataset BinarizeNormalized(const Dataset& in);

}  // namespace bayeslsh

#endif  // BAYESLSH_VEC_TRANSFORMS_H_
