#include "vec/sparse_vector.h"

#include <cmath>

namespace bayeslsh {

double SparseDot(const SparseVectorView& a, const SparseVectorView& b) {
  double acc = 0.0;
  size_t i = 0, j = 0;
  const size_t na = a.indices.size(), nb = b.indices.size();
  while (i < na && j < nb) {
    const DimId da = a.indices[i], db = b.indices[j];
    if (da == db) {
      acc += static_cast<double>(a.values[i]) * b.values[j];
      ++i;
      ++j;
    } else if (da < db) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

uint32_t SparseOverlap(const SparseVectorView& a, const SparseVectorView& b) {
  uint32_t overlap = 0;
  size_t i = 0, j = 0;
  const size_t na = a.indices.size(), nb = b.indices.size();
  while (i < na && j < nb) {
    const DimId da = a.indices[i], db = b.indices[j];
    if (da == db) {
      ++overlap;
      ++i;
      ++j;
    } else if (da < db) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

double SparseEuclideanDistance(const SparseVectorView& a,
                               const SparseVectorView& b) {
  double acc = 0.0;
  size_t i = 0, j = 0;
  const size_t na = a.indices.size(), nb = b.indices.size();
  while (i < na && j < nb) {
    const DimId da = a.indices[i], db = b.indices[j];
    double diff;
    if (da == db) {
      diff = static_cast<double>(a.values[i]) - b.values[j];
      ++i;
      ++j;
    } else if (da < db) {
      diff = a.values[i];
      ++i;
    } else {
      diff = b.values[j];
      ++j;
    }
    acc += diff * diff;
  }
  for (; i < na; ++i) {
    acc += static_cast<double>(a.values[i]) * a.values[i];
  }
  for (; j < nb; ++j) {
    acc += static_cast<double>(b.values[j]) * b.values[j];
  }
  return std::sqrt(acc);
}

double SparseNorm2(const SparseVectorView& v) {
  double acc = 0.0;
  for (float x : v.values) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

double SparseNorm1(const SparseVectorView& v) {
  double acc = 0.0;
  for (float x : v.values) acc += std::abs(static_cast<double>(x));
  return acc;
}

float SparseMaxWeight(const SparseVectorView& v) {
  float mw = 0.0f;
  for (float x : v.values) {
    const float ax = std::abs(x);
    if (ax > mw) mw = ax;
  }
  return mw;
}

}  // namespace bayeslsh
