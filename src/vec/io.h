// Plain-text dataset serialization.
//
// Format (one vector per line, SVM-light-like, zero-based dims):
//
//   %BayesLSH sparse 1.0
//   <num_vectors> <num_dims>
//   dim:weight dim:weight ...
//
// Weights are written with enough digits to round-trip floats exactly.
// Lines may be empty (an empty vector). This keeps our synthetic corpora
// inspectable and lets users bring their own data.

#ifndef BAYESLSH_VEC_IO_H_
#define BAYESLSH_VEC_IO_H_

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "vec/dataset.h"

namespace bayeslsh {

// Raised on malformed input.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Throws IoError unless `path` is plausibly readable data — the
// fail-closed precheck shared by every file-opening loader, so a
// directory, an unreadable file or a zero-byte regular file handed to
// --index/--input produces one precise diagnostic (CLI exit code 2)
// instead of an obscure downstream stream error. Non-regular readable
// files (pipes, /dev/stdin, process substitution) pass through: only the
// downstream parser can judge a stream.
void RequireReadableDataFile(const std::string& path);

void WriteDataset(const Dataset& d, std::ostream& out);
void WriteDatasetFile(const Dataset& d, const std::string& path);

Dataset ReadDataset(std::istream& in);
Dataset ReadDatasetFile(const std::string& path);

// Binary dataset format: a fixed header followed by the raw CSR arrays
// (indptr as u64, indices as u32, values as f32), ~4x smaller and an order
// of magnitude faster to load than the text form — for corpora where load
// time matters. Host-endian (documented in the header magic; files are not
// portable across endianness, which excludes no supported platform).
//
// ReadDatasetAuto sniffs the magic bytes and dispatches to the right
// reader, so the CLI and examples accept either format transparently.
void WriteDatasetBinary(const Dataset& d, std::ostream& out);
void WriteDatasetBinaryFile(const Dataset& d, const std::string& path);

Dataset ReadDatasetBinary(std::istream& in);
Dataset ReadDatasetBinaryFile(const std::string& path);

Dataset ReadDatasetAutoFile(const std::string& path);

}  // namespace bayeslsh

#endif  // BAYESLSH_VEC_IO_H_
