#include "vec/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace bayeslsh {

namespace {

// Sorts entries by dimension, merges duplicates by summing, drops zeros —
// the row normalization shared by DatasetBuilder::AddRow and
// Dataset::AppendRow. The zero test is on the float that will actually be
// stored, not the double accumulator: a sum that rounds to 0.0f must be
// dropped now, or re-normalizing the stored row later (the manifest load
// replay) would drop it then and disagree with the original.
void NormalizeRowEntries(std::vector<std::pair<DimId, float>>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < entries->size();) {
    const DimId d = (*entries)[i].first;
    double w = 0.0;
    while (i < entries->size() && (*entries)[i].first == d) {
      w += (*entries)[i].second;
      ++i;
    }
    if (static_cast<float>(w) != 0.0f) {
      (*entries)[out++] = {d, static_cast<float>(w)};
    }
  }
  entries->resize(out);
}

}  // namespace

Dataset::Dataset(uint32_t num_dims, std::vector<uint64_t> indptr,
                 std::vector<DimId> indices, std::vector<float> values)
    : num_dims_(num_dims),
      indptr_(std::move(indptr)),
      indices_(std::move(indices)),
      values_(std::move(values)) {
  assert(!indptr_.empty());
  assert(indptr_.front() == 0);
  assert(indptr_.back() == indices_.size());
  assert(indices_.size() == values_.size());
}

uint32_t Dataset::AppendRow(std::vector<std::pair<DimId, float>> entries) {
  // Every constructor establishes the leading indptr sentinel; only a
  // moved-from Dataset lacks it, and appending to one is a caller error.
  assert(!indptr_.empty() && indptr_.front() == 0);
  NormalizeRowEntries(&entries);
  for (const auto& [d, w] : entries) {
    if (d >= num_dims_) {
      throw std::invalid_argument(
          "Dataset::AppendRow: dimension " + std::to_string(d) +
          " out of range (collection has " + std::to_string(num_dims_) +
          " dimensions)");
    }
  }
  for (const auto& [d, w] : entries) {
    indices_.push_back(d);
    values_.push_back(w);
  }
  indptr_.push_back(indices_.size());
  return static_cast<uint32_t>(indptr_.size() - 2);
}

DatasetStats Dataset::Stats() const {
  DatasetStats s;
  s.num_vectors = num_vectors();
  s.num_dims = num_dims_;
  s.total_nnz = nnz();
  if (s.num_vectors == 0) return s;
  s.avg_length = static_cast<double>(s.total_nnz) / s.num_vectors;
  double var = 0.0;
  for (uint32_t i = 0; i < s.num_vectors; ++i) {
    const uint32_t len = RowLength(i);
    s.max_length = std::max(s.max_length, len);
    const double d = len - s.avg_length;
    var += d * d;
  }
  s.length_stddev = std::sqrt(var / s.num_vectors);
  return s;
}

std::vector<uint32_t> Dataset::DimFrequencies() const {
  std::vector<uint32_t> freq(num_dims_, 0);
  for (DimId d : indices_) ++freq[d];
  return freq;
}

std::vector<float> Dataset::DimMaxWeights() const {
  std::vector<float> mw(num_dims_, 0.0f);
  for (size_t k = 0; k < indices_.size(); ++k) {
    const float a = std::abs(values_[k]);
    if (a > mw[indices_[k]]) mw[indices_[k]] = a;
  }
  return mw;
}

void DatasetBuilder::AddRow(std::vector<std::pair<DimId, float>> entries) {
  NormalizeRowEntries(&entries);
  for (const auto& [d, w] : entries) {
    if (d >= num_dims_) num_dims_ = d + 1;
    indices_.push_back(d);
    values_.push_back(w);
  }
  indptr_.push_back(indices_.size());
}

void DatasetBuilder::AddSetRow(std::vector<DimId> dims) {
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  for (DimId d : dims) {
    if (d >= num_dims_) num_dims_ = d + 1;
    indices_.push_back(d);
    values_.push_back(1.0f);
  }
  indptr_.push_back(indices_.size());
}

Dataset DatasetBuilder::Build() && {
  return Dataset(num_dims_, std::move(indptr_), std::move(indices_),
                 std::move(values_));
}

}  // namespace bayeslsh
