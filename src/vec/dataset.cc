#include "vec/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bayeslsh {

Dataset::Dataset(uint32_t num_dims, std::vector<uint64_t> indptr,
                 std::vector<DimId> indices, std::vector<float> values)
    : num_dims_(num_dims),
      indptr_(std::move(indptr)),
      indices_(std::move(indices)),
      values_(std::move(values)) {
  assert(!indptr_.empty());
  assert(indptr_.front() == 0);
  assert(indptr_.back() == indices_.size());
  assert(indices_.size() == values_.size());
}

DatasetStats Dataset::Stats() const {
  DatasetStats s;
  s.num_vectors = num_vectors();
  s.num_dims = num_dims_;
  s.total_nnz = nnz();
  if (s.num_vectors == 0) return s;
  s.avg_length = static_cast<double>(s.total_nnz) / s.num_vectors;
  double var = 0.0;
  for (uint32_t i = 0; i < s.num_vectors; ++i) {
    const uint32_t len = RowLength(i);
    s.max_length = std::max(s.max_length, len);
    const double d = len - s.avg_length;
    var += d * d;
  }
  s.length_stddev = std::sqrt(var / s.num_vectors);
  return s;
}

std::vector<uint32_t> Dataset::DimFrequencies() const {
  std::vector<uint32_t> freq(num_dims_, 0);
  for (DimId d : indices_) ++freq[d];
  return freq;
}

std::vector<float> Dataset::DimMaxWeights() const {
  std::vector<float> mw(num_dims_, 0.0f);
  for (size_t k = 0; k < indices_.size(); ++k) {
    const float a = std::abs(values_[k]);
    if (a > mw[indices_[k]]) mw[indices_[k]] = a;
  }
  return mw;
}

void DatasetBuilder::AddRow(std::vector<std::pair<DimId, float>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t out = 0;
  // Merge duplicates, drop zeros.
  for (size_t i = 0; i < entries.size();) {
    const DimId d = entries[i].first;
    double w = 0.0;
    while (i < entries.size() && entries[i].first == d) {
      w += entries[i].second;
      ++i;
    }
    if (w != 0.0) {
      entries[out++] = {d, static_cast<float>(w)};
    }
  }
  entries.resize(out);
  for (const auto& [d, w] : entries) {
    if (d >= num_dims_) num_dims_ = d + 1;
    indices_.push_back(d);
    values_.push_back(w);
  }
  indptr_.push_back(indices_.size());
}

void DatasetBuilder::AddSetRow(std::vector<DimId> dims) {
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  for (DimId d : dims) {
    if (d >= num_dims_) num_dims_ = d + 1;
    indices_.push_back(d);
    values_.push_back(1.0f);
  }
  indptr_.push_back(indices_.size());
}

Dataset DatasetBuilder::Build() && {
  return Dataset(num_dims_, std::move(indptr_), std::move(indices_),
                 std::move(values_));
}

}  // namespace bayeslsh
