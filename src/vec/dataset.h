// CSR-format collection of sparse vectors: the object collection D on which
// all-pairs similarity search runs.
//
// Rows are built through DatasetBuilder (which sorts and merges duplicate
// feature ids), after which a Dataset is append-only: existing rows never
// change, and new rows may be added at the tail with AppendRow (the
// dynamic-index delta segment grows this way). Transformations such as
// tf-idf weighting and L2 normalization produce new Datasets
// (see vec/transforms.h).

#ifndef BAYESLSH_VEC_DATASET_H_
#define BAYESLSH_VEC_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "vec/sparse_vector.h"

namespace bayeslsh {

// Aggregate statistics of a dataset, matching the columns of the paper's
// Table 1.
struct DatasetStats {
  uint32_t num_vectors = 0;
  uint32_t num_dims = 0;
  double avg_length = 0.0;   // Average non-zeros per vector.
  uint64_t total_nnz = 0;    // Total non-zeros.
  uint32_t max_length = 0;   // Longest vector.
  double length_stddev = 0;  // Std-dev of vector lengths.
};

// Append-only CSR sparse matrix; row i is object i. Existing rows are
// never modified (the immutability every signature store and banding
// build relies on); AppendRow grows the collection at the tail — the
// delta-segment growth path of core/dynamic_index.h.
class Dataset {
 public:
  Dataset() = default;
  Dataset(uint32_t num_dims, std::vector<uint64_t> indptr,
          std::vector<DimId> indices, std::vector<float> values);

  // Appends one row (entries in any order; duplicate dimension ids are
  // merged by summing, zero weights dropped — the DatasetBuilder
  // normalization) and returns its row id. Existing rows are untouched,
  // but the backing arrays may reallocate: SparseVectorView objects
  // obtained from Row() before the append are invalidated — re-fetch
  // views after appending (every store in this codebase fetches views
  // transiently). Throws std::invalid_argument if an entry's dimension
  // is >= num_dims().
  uint32_t AppendRow(std::vector<std::pair<DimId, float>> entries);

  uint32_t num_vectors() const {
    return indptr_.empty() ? 0 : static_cast<uint32_t>(indptr_.size() - 1);
  }
  uint32_t num_dims() const { return num_dims_; }
  uint64_t nnz() const { return indices_.size(); }

  // Number of non-zeros in row i.
  uint32_t RowLength(uint32_t i) const {
    return static_cast<uint32_t>(indptr_[i + 1] - indptr_[i]);
  }

  SparseVectorView Row(uint32_t i) const {
    const uint64_t begin = indptr_[i], end = indptr_[i + 1];
    return SparseVectorView{
        {indices_.data() + begin, indices_.data() + end},
        {values_.data() + begin, values_.data() + end}};
  }

  const std::vector<uint64_t>& indptr() const { return indptr_; }
  const std::vector<DimId>& indices() const { return indices_; }
  const std::vector<float>& values() const { return values_; }

  DatasetStats Stats() const;

  // Number of rows in which each dimension appears (document frequency).
  std::vector<uint32_t> DimFrequencies() const;

  // Largest absolute weight per dimension across all rows ("maxweight_i(V)"
  // in the AllPairs paper).
  std::vector<float> DimMaxWeights() const;

 private:
  uint32_t num_dims_ = 0;
  std::vector<uint64_t> indptr_ = {0};
  std::vector<DimId> indices_;
  std::vector<float> values_;
};

// Incremental row-by-row builder. Duplicate feature ids within a row are
// merged by summing their weights; zero-weight entries are dropped.
class DatasetBuilder {
 public:
  explicit DatasetBuilder(uint32_t num_dims = 0) : num_dims_(num_dims) {}

  // Adds one row given (dim, weight) pairs in any order.
  void AddRow(std::vector<std::pair<DimId, float>> entries);

  // Adds one row from a plain set of dimensions, all with weight 1
  // (binary data).
  void AddSetRow(std::vector<DimId> dims);

  uint32_t num_rows() const {
    return static_cast<uint32_t>(indptr_.size() - 1);
  }

  // Finalizes the dataset. The builder is left empty.
  Dataset Build() &&;

 private:
  uint32_t num_dims_;
  std::vector<uint64_t> indptr_ = {0};
  std::vector<DimId> indices_;
  std::vector<float> values_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_VEC_DATASET_H_
