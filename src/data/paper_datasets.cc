#include "data/paper_datasets.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "data/graph_generator.h"
#include "data/text_generator.h"
#include "vec/transforms.h"

namespace bayeslsh {

std::vector<PaperDataset> AllPaperDatasets() {
  return {PaperDataset::kRcv1,      PaperDataset::kWikiWords100k,
          PaperDataset::kWikiWords500k, PaperDataset::kWikiLinks,
          PaperDataset::kOrkut,     PaperDataset::kTwitter};
}

std::vector<PaperDataset> BinaryExperimentDatasets() {
  return {PaperDataset::kWikiWords500k, PaperDataset::kOrkut,
          PaperDataset::kTwitter};
}

std::string PaperDatasetName(PaperDataset which) {
  switch (which) {
    case PaperDataset::kRcv1:
      return "RCV1-like";
    case PaperDataset::kWikiWords100k:
      return "WikiWords100K-like";
    case PaperDataset::kWikiWords500k:
      return "WikiWords500K-like";
    case PaperDataset::kWikiLinks:
      return "WikiLinks-like";
    case PaperDataset::kOrkut:
      return "Orkut-like";
    case PaperDataset::kTwitter:
      return "Twitter-like";
  }
  return "unknown";
}

bool IsGraphShaped(PaperDataset which) {
  switch (which) {
    case PaperDataset::kWikiLinks:
    case PaperDataset::kOrkut:
    case PaperDataset::kTwitter:
      return true;
    default:
      return false;
  }
}

namespace {

uint32_t Scaled(uint32_t base, double scale) {
  const double v = std::round(base * scale);
  return v < 64.0 ? 64u : static_cast<uint32_t>(v);
}

// Cluster/community counts must keep num * members <= total (the generator
// precondition), so the 64-floor above would overshoot at small scales.
uint32_t ScaledClusters(uint32_t base, double scale, uint32_t total,
                        uint32_t members) {
  const double v = std::round(base * scale);
  const uint32_t n = v < 1.0 ? 1u : static_cast<uint32_t>(v);
  return std::min(n, total / members);
}

}  // namespace

Dataset MakeRawPaperDataset(PaperDataset which, double scale, uint64_t seed) {
  assert(scale > 0.0);
  switch (which) {
    case PaperDataset::kRcv1: {
      TextCorpusConfig c;
      c.num_docs = Scaled(4500, scale);
      c.vocab_size = 12000;
      c.avg_doc_len = 76.0;
      c.doc_len_sigma = 0.5;
      c.cluster_size = 4;
      c.num_clusters = ScaledClusters(220, scale, c.num_docs, c.cluster_size);
      c.seed = seed;
      return GenerateTextCorpus(c);
    }
    case PaperDataset::kWikiWords100k: {
      // Long documents (paper avg 786); dimensionality well above doc count.
      TextCorpusConfig c;
      c.num_docs = Scaled(2000, scale);
      c.vocab_size = 30000;
      c.avg_doc_len = 400.0;
      c.doc_len_sigma = 0.35;
      c.cluster_size = 4;
      c.num_clusters = ScaledClusters(120, scale, c.num_docs, c.cluster_size);
      c.seed = seed + 1;
      return GenerateTextCorpus(c);
    }
    case PaperDataset::kWikiWords500k: {
      TextCorpusConfig c;
      c.num_docs = Scaled(6000, scale);
      c.vocab_size = 30000;
      c.avg_doc_len = 200.0;
      c.doc_len_sigma = 0.4;
      c.cluster_size = 4;
      c.num_clusters = ScaledClusters(280, scale, c.num_docs, c.cluster_size);
      c.seed = seed + 2;
      return GenerateTextCorpus(c);
    }
    case PaperDataset::kWikiLinks: {
      // Short vectors, very skewed lengths: AllPairs territory.
      GraphConfig c;
      c.num_nodes = Scaled(9000, scale);
      c.avg_degree = 24.0;
      c.degree_sigma = 0.9;
      c.community_size = 4;
      c.num_communities = ScaledClusters(400, scale, c.num_nodes, c.community_size);
      c.seed = seed + 3;
      return GenerateGraphAdjacency(c);
    }
    case PaperDataset::kOrkut: {
      GraphConfig c;
      c.num_nodes = Scaled(9000, scale);
      c.avg_degree = 76.0;
      c.degree_sigma = 0.8;
      c.community_size = 4;
      c.num_communities = ScaledClusters(400, scale, c.num_nodes, c.community_size);
      c.seed = seed + 4;
      return GenerateGraphAdjacency(c);
    }
    case PaperDataset::kTwitter: {
      // Few users, very long follow vectors (paper avg 1369).
      GraphConfig c;
      c.num_nodes = Scaled(2400, scale);
      c.avg_degree = 500.0;
      c.degree_sigma = 0.5;
      c.community_size = 4;
      c.num_communities = ScaledClusters(150, scale, c.num_nodes, c.community_size);
      c.seed = seed + 5;
      return GenerateGraphAdjacency(c);
    }
  }
  return Dataset();
}

Dataset MakeWeightedPaperDataset(PaperDataset which, double scale,
                                 uint64_t seed) {
  return L2NormalizeRows(
      TfIdfTransform(MakeRawPaperDataset(which, scale, seed)));
}

Dataset MakeBinaryPaperDataset(PaperDataset which, double scale,
                               uint64_t seed) {
  return Binarize(MakeRawPaperDataset(which, scale, seed));
}

}  // namespace bayeslsh
