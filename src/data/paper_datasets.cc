#include "data/paper_datasets.h"

#include <cassert>
#include <cmath>

#include "data/graph_generator.h"
#include "data/text_generator.h"
#include "vec/transforms.h"

namespace bayeslsh {

std::vector<PaperDataset> AllPaperDatasets() {
  return {PaperDataset::kRcv1,      PaperDataset::kWikiWords100k,
          PaperDataset::kWikiWords500k, PaperDataset::kWikiLinks,
          PaperDataset::kOrkut,     PaperDataset::kTwitter};
}

std::vector<PaperDataset> BinaryExperimentDatasets() {
  return {PaperDataset::kWikiWords500k, PaperDataset::kOrkut,
          PaperDataset::kTwitter};
}

std::string PaperDatasetName(PaperDataset which) {
  switch (which) {
    case PaperDataset::kRcv1:
      return "RCV1-like";
    case PaperDataset::kWikiWords100k:
      return "WikiWords100K-like";
    case PaperDataset::kWikiWords500k:
      return "WikiWords500K-like";
    case PaperDataset::kWikiLinks:
      return "WikiLinks-like";
    case PaperDataset::kOrkut:
      return "Orkut-like";
    case PaperDataset::kTwitter:
      return "Twitter-like";
  }
  return "unknown";
}

bool IsGraphShaped(PaperDataset which) {
  switch (which) {
    case PaperDataset::kWikiLinks:
    case PaperDataset::kOrkut:
    case PaperDataset::kTwitter:
      return true;
    default:
      return false;
  }
}

namespace {

uint32_t Scaled(uint32_t base, double scale) {
  const double v = std::round(base * scale);
  return v < 64.0 ? 64u : static_cast<uint32_t>(v);
}

}  // namespace

Dataset MakeRawPaperDataset(PaperDataset which, double scale, uint64_t seed) {
  assert(scale > 0.0);
  switch (which) {
    case PaperDataset::kRcv1: {
      TextCorpusConfig c;
      c.num_docs = Scaled(4500, scale);
      c.vocab_size = 12000;
      c.avg_doc_len = 76.0;
      c.doc_len_sigma = 0.5;
      c.num_clusters = Scaled(220, scale);
      c.cluster_size = 4;
      c.seed = seed;
      return GenerateTextCorpus(c);
    }
    case PaperDataset::kWikiWords100k: {
      // Long documents (paper avg 786); dimensionality well above doc count.
      TextCorpusConfig c;
      c.num_docs = Scaled(2000, scale);
      c.vocab_size = 30000;
      c.avg_doc_len = 400.0;
      c.doc_len_sigma = 0.35;
      c.num_clusters = Scaled(120, scale);
      c.cluster_size = 4;
      c.seed = seed + 1;
      return GenerateTextCorpus(c);
    }
    case PaperDataset::kWikiWords500k: {
      TextCorpusConfig c;
      c.num_docs = Scaled(6000, scale);
      c.vocab_size = 30000;
      c.avg_doc_len = 200.0;
      c.doc_len_sigma = 0.4;
      c.num_clusters = Scaled(280, scale);
      c.cluster_size = 4;
      c.seed = seed + 2;
      return GenerateTextCorpus(c);
    }
    case PaperDataset::kWikiLinks: {
      // Short vectors, very skewed lengths: AllPairs territory.
      GraphConfig c;
      c.num_nodes = Scaled(9000, scale);
      c.avg_degree = 24.0;
      c.degree_sigma = 0.9;
      c.num_communities = Scaled(400, scale);
      c.community_size = 4;
      c.seed = seed + 3;
      return GenerateGraphAdjacency(c);
    }
    case PaperDataset::kOrkut: {
      GraphConfig c;
      c.num_nodes = Scaled(9000, scale);
      c.avg_degree = 76.0;
      c.degree_sigma = 0.8;
      c.num_communities = Scaled(400, scale);
      c.community_size = 4;
      c.seed = seed + 4;
      return GenerateGraphAdjacency(c);
    }
    case PaperDataset::kTwitter: {
      // Few users, very long follow vectors (paper avg 1369).
      GraphConfig c;
      c.num_nodes = Scaled(2400, scale);
      c.avg_degree = 500.0;
      c.degree_sigma = 0.5;
      c.num_communities = Scaled(150, scale);
      c.community_size = 4;
      c.seed = seed + 5;
      return GenerateGraphAdjacency(c);
    }
  }
  return Dataset();
}

Dataset MakeWeightedPaperDataset(PaperDataset which, double scale,
                                 uint64_t seed) {
  return L2NormalizeRows(
      TfIdfTransform(MakeRawPaperDataset(which, scale, seed)));
}

Dataset MakeBinaryPaperDataset(PaperDataset which, double scale,
                               uint64_t seed) {
  return Binarize(MakeRawPaperDataset(which, scale, seed));
}

}  // namespace bayeslsh
