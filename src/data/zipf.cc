#include "data/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bayeslsh {

ZipfSampler::ZipfSampler(uint32_t n, double exponent) {
  assert(n >= 1);
  assert(exponent >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding.
}

uint32_t ZipfSampler::Sample(Xoshiro256StarStar& rng) const {
  const double u = rng.NextUnit();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint32_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace bayeslsh
