// Scaled stand-ins for the paper's six evaluation datasets (Table 1).
//
// Each config preserves the *shape* that drives algorithm behaviour —
// text-like (long weighted vectors, vocabulary dims) vs graph-like (short
// skewed vectors, dim == #nodes, high length variance) — at a size where the
// full benchmark suite, including the slowest exact baselines, runs in
// minutes on one core. See DESIGN.md §2 for the substitution argument.
//
//   paper dataset     vectors    avg len   our default (scale = 1)
//   RCV1              804,414        76    4,500 docs   × ~55 unique terms
//   WikiWords100K     100,528       786    2,000 docs   × ~230
//   WikiWords500K     494,244       398    6,000 docs   × ~130
//   WikiLinks       1,815,914        24    9,000 nodes  × ~24
//   Orkut           3,072,626        76    9,000 nodes  × ~75
//   Twitter           146,170     1,369    2,400 nodes  × ~480
//
// The `scale` parameter multiplies the vector count for users with more
// patience.

#ifndef BAYESLSH_DATA_PAPER_DATASETS_H_
#define BAYESLSH_DATA_PAPER_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vec/dataset.h"

namespace bayeslsh {

enum class PaperDataset {
  kRcv1,
  kWikiWords100k,
  kWikiWords500k,
  kWikiLinks,
  kOrkut,
  kTwitter,
};

// All six, in the paper's Table 1 order.
std::vector<PaperDataset> AllPaperDatasets();

// The three largest (by non-zeros), used for the binary experiments
// (Figure 3(g)-(l)): WikiWords500K, Orkut, Twitter.
std::vector<PaperDataset> BinaryExperimentDatasets();

std::string PaperDatasetName(PaperDataset which);

// True for the graph-shaped datasets (WikiLinks, Orkut, Twitter).
bool IsGraphShaped(PaperDataset which);

// Raw dataset (term counts for text, binary adjacency for graphs).
Dataset MakeRawPaperDataset(PaperDataset which, double scale = 1.0,
                            uint64_t seed = 1234);

// Tf-idf weighted + L2-normalized — ready for Measure::kCosine, matching
// the paper's weighted experiments.
Dataset MakeWeightedPaperDataset(PaperDataset which, double scale = 1.0,
                                 uint64_t seed = 1234);

// Binarized — ready for kJaccard / kBinaryCosine.
Dataset MakeBinaryPaperDataset(PaperDataset which, double scale = 1.0,
                               uint64_t seed = 1234);

}  // namespace bayeslsh

#endif  // BAYESLSH_DATA_PAPER_DATASETS_H_
