#include "data/graph_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "data/zipf.h"

namespace bayeslsh {

namespace {

uint32_t SampleDegree(Xoshiro256StarStar& rng, const GraphConfig& cfg) {
  const double mu =
      std::log(cfg.avg_degree) - 0.5 * cfg.degree_sigma * cfg.degree_sigma;
  const double deg = std::exp(mu + cfg.degree_sigma * rng.NextGaussian());
  const auto clamped = std::max<uint32_t>(
      cfg.min_degree, static_cast<uint32_t>(std::lround(deg)));
  return std::min(clamped, cfg.num_nodes - 1);
}

// Draws `count` distinct targets (Zipf over a random permutation of node
// ids, so popularity is not correlated with node id).
std::vector<DimId> SampleTargets(Xoshiro256StarStar& rng,
                                 const ZipfSampler& zipf,
                                 const std::vector<uint32_t>& popularity_perm,
                                 uint32_t count) {
  std::vector<DimId> targets;
  targets.reserve(count);
  // Rejection-sample distinct targets; degree << num_nodes so this is fast.
  uint32_t guard = 0;
  while (targets.size() < count && guard < 50u * count + 100u) {
    ++guard;
    const DimId t = popularity_perm[zipf.Sample(rng)];
    if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
      targets.push_back(t);
    }
  }
  return targets;
}

// Pads a (possibly deduplicated) neighbour list up to min_degree with
// uniform-random distinct targets, so rewiring collisions cannot push a
// node below the configured floor.
void EnsureMinDegree(std::vector<DimId>& nbrs, uint32_t min_degree,
                     uint32_t num_nodes, Xoshiro256StarStar& rng) {
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  while (nbrs.size() < min_degree && nbrs.size() < num_nodes) {
    const auto t = static_cast<DimId>(rng.NextBounded(num_nodes));
    if (!std::binary_search(nbrs.begin(), nbrs.end(), t)) {
      nbrs.insert(std::lower_bound(nbrs.begin(), nbrs.end(), t), t);
    }
  }
}

}  // namespace

Dataset GenerateGraphAdjacency(const GraphConfig& config) {
  assert(static_cast<uint64_t>(config.num_communities) *
             config.community_size <=
         config.num_nodes);
  Xoshiro256StarStar rng(config.seed);
  const ZipfSampler zipf(config.num_nodes, config.target_zipf_exponent);

  // Random popularity ranking of nodes.
  std::vector<uint32_t> perm(config.num_nodes);
  for (uint32_t i = 0; i < config.num_nodes; ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng);

  DatasetBuilder builder(config.num_nodes);

  // Planted communities.
  for (uint32_t c = 0; c < config.num_communities; ++c) {
    const uint32_t deg = SampleDegree(rng, config);
    std::vector<DimId> pool = SampleTargets(rng, zipf, perm, deg);
    EnsureMinDegree(pool, config.min_degree, config.num_nodes, rng);
    builder.AddSetRow(pool);
    for (uint32_t m = 1; m < config.community_size; ++m) {
      const double rate =
          rng.NextUniform(config.rewire_min, config.rewire_max);
      std::vector<DimId> nbrs = pool;
      for (auto& t : nbrs) {
        if (rng.NextUnit() < rate) t = perm[zipf.Sample(rng)];
      }
      EnsureMinDegree(nbrs, config.min_degree, config.num_nodes, rng);
      builder.AddSetRow(std::move(nbrs));
    }
  }
  // Background nodes.
  while (builder.num_rows() < config.num_nodes) {
    std::vector<DimId> nbrs =
        SampleTargets(rng, zipf, perm, SampleDegree(rng, config));
    EnsureMinDegree(nbrs, config.min_degree, config.num_nodes, rng);
    builder.AddSetRow(std::move(nbrs));
  }
  return std::move(builder).Build();
}

}  // namespace bayeslsh
