// Synthetic graph-adjacency generator: the stand-in for the WikiLinks,
// Orkut and Twitter datasets.
//
// Each node's vector is its out-neighbour set (dimension = target node id,
// num_dims = num_nodes), matching how the paper turns graphs into vectors.
// Degrees follow a log-normal law; targets are drawn Zipf-style so
// in-degrees are heavy-tailed (the "celebrity" effect that makes graph
// datasets short-but-skewed, which is exactly the regime where the paper
// finds AllPairs beating LSH).
//
// Planted *communities* supply the similarity structure: members of a
// community draw most of their neighbours from a shared pool and rewire a
// per-member fraction, sweeping pairwise similarity across bands.

#ifndef BAYESLSH_DATA_GRAPH_GENERATOR_H_
#define BAYESLSH_DATA_GRAPH_GENERATOR_H_

#include <cstdint>

#include "vec/dataset.h"

namespace bayeslsh {

struct GraphConfig {
  uint32_t num_nodes = 10000;
  double avg_degree = 24.0;
  double degree_sigma = 0.8;     // Log-normal degree spread (high variance,
                                 // as in the paper's graph datasets).
  uint32_t min_degree = 3;
  double target_zipf_exponent = 0.85;  // In-degree skew.

  uint32_t num_communities = 200;
  uint32_t community_size = 4;     // Members per community.
  double rewire_min = 0.05;        // Fraction of a member's neighbours...
  double rewire_max = 0.7;         // ...resampled away from the shared pool.

  uint64_t seed = 7;
};

// Returns the adjacency Dataset (binary values; one row per node). Rows
// 0 .. num_communities*community_size-1 are the planted communities.
Dataset GenerateGraphAdjacency(const GraphConfig& config);

}  // namespace bayeslsh

#endif  // BAYESLSH_DATA_GRAPH_GENERATOR_H_
