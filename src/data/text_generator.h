// Synthetic text-corpus generator: the stand-in for RCV1 and the WikiWords
// datasets (see DESIGN.md §2 for the substitution rationale).
//
// Documents are bags of words drawn from a Zipfian vocabulary with
// log-normal lengths. A configurable number of *planted clusters* provides
// the similarity structure an all-pairs search needs: each cluster starts
// from a base document and adds near-duplicates where a fraction p of the
// tokens (drawn uniformly from [mutation_min, mutation_max] per duplicate)
// is resampled — sweeping p populates every similarity band between
// ~(1 - mutation_max) and ~(1 - mutation_min).
//
// The generator emits raw term counts; feed through TfIdfTransform +
// L2NormalizeRows (weighted cosine) or Binarize (Jaccard / binary cosine).

#ifndef BAYESLSH_DATA_TEXT_GENERATOR_H_
#define BAYESLSH_DATA_TEXT_GENERATOR_H_

#include <cstdint>

#include "vec/dataset.h"

namespace bayeslsh {

struct TextCorpusConfig {
  uint32_t num_docs = 5000;
  uint32_t vocab_size = 20000;
  double zipf_exponent = 1.05;  // Word-frequency skew.

  double avg_doc_len = 80.0;    // Mean token count (with repetition).
  double doc_len_sigma = 0.45;  // Sigma of the log-normal length law.
  uint32_t min_doc_len = 8;

  // Planted near-duplicate clusters.
  uint32_t num_clusters = 150;
  uint32_t cluster_size = 4;       // Documents per cluster (incl. the base).
  double mutation_min = 0.02;      // Fraction of tokens resampled...
  double mutation_max = 0.65;      // ...per near-duplicate.

  uint64_t seed = 1;
};

// Returns a Dataset of raw term counts (row = document, value = term count).
// Rows 0 .. num_clusters*cluster_size-1 are the planted clusters (grouped
// consecutively); the rest is background.
Dataset GenerateTextCorpus(const TextCorpusConfig& config);

}  // namespace bayeslsh

#endif  // BAYESLSH_DATA_TEXT_GENERATOR_H_
