// Zipf-distributed sampling over {0, ..., n-1}: rank k is drawn with
// probability proportional to 1 / (k+1)^s.
//
// Zipfian feature frequencies are the statistical property of text corpora
// (and of graph in-degrees) that drives the behaviour of every algorithm in
// this library: prefix filters key on rare features, AllPairs on
// document-frequency ordering, LSH bucket sizes on feature skew. The
// synthetic corpora are built on this sampler.

#ifndef BAYESLSH_DATA_ZIPF_H_
#define BAYESLSH_DATA_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/prng.h"

namespace bayeslsh {

class ZipfSampler {
 public:
  // n >= 1 ranks; exponent s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(uint32_t n, double exponent);

  // Draws one rank in [0, n).
  uint32_t Sample(Xoshiro256StarStar& rng) const;

  uint32_t size() const { return static_cast<uint32_t>(cdf_.size()); }

  // Probability of rank k.
  double Probability(uint32_t k) const;

 private:
  std::vector<double> cdf_;  // Normalized cumulative weights.
};

}  // namespace bayeslsh

#endif  // BAYESLSH_DATA_ZIPF_H_
