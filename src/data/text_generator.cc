#include "data/text_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "data/zipf.h"

namespace bayeslsh {

namespace {

uint32_t SampleDocLength(Xoshiro256StarStar& rng,
                         const TextCorpusConfig& cfg) {
  // Log-normal with the requested mean: mu = log(mean) - sigma^2 / 2.
  const double mu =
      std::log(cfg.avg_doc_len) - 0.5 * cfg.doc_len_sigma * cfg.doc_len_sigma;
  const double len =
      std::exp(mu + cfg.doc_len_sigma * rng.NextGaussian());
  return std::max<uint32_t>(cfg.min_doc_len,
                            static_cast<uint32_t>(std::lround(len)));
}

std::vector<DimId> SampleTokens(Xoshiro256StarStar& rng,
                                const ZipfSampler& zipf, uint32_t len) {
  std::vector<DimId> tokens(len);
  for (auto& t : tokens) t = zipf.Sample(rng);
  return tokens;
}

// Resamples each token independently with probability `rate`.
std::vector<DimId> MutateTokens(Xoshiro256StarStar& rng,
                                const ZipfSampler& zipf,
                                const std::vector<DimId>& base, double rate) {
  std::vector<DimId> out = base;
  for (auto& t : out) {
    if (rng.NextUnit() < rate) t = zipf.Sample(rng);
  }
  return out;
}

void AddBagOfWords(DatasetBuilder& builder, std::vector<DimId> tokens) {
  std::vector<std::pair<DimId, float>> entries;
  entries.reserve(tokens.size());
  for (DimId t : tokens) entries.emplace_back(t, 1.0f);
  builder.AddRow(std::move(entries));  // Builder merges duplicate tokens.
}

}  // namespace

Dataset GenerateTextCorpus(const TextCorpusConfig& config) {
  assert(config.cluster_size >= 1);
  assert(static_cast<uint64_t>(config.num_clusters) * config.cluster_size <=
         config.num_docs);
  Xoshiro256StarStar rng(config.seed);
  const ZipfSampler zipf(config.vocab_size, config.zipf_exponent);
  DatasetBuilder builder(config.vocab_size);

  // Planted clusters first.
  for (uint32_t c = 0; c < config.num_clusters; ++c) {
    const uint32_t len = SampleDocLength(rng, config);
    const std::vector<DimId> base = SampleTokens(rng, zipf, len);
    AddBagOfWords(builder, base);
    for (uint32_t d = 1; d < config.cluster_size; ++d) {
      const double rate = rng.NextUniform(config.mutation_min,
                                          config.mutation_max);
      AddBagOfWords(builder, MutateTokens(rng, zipf, base, rate));
    }
  }
  // Background documents.
  while (builder.num_rows() < config.num_docs) {
    AddBagOfWords(builder,
                  SampleTokens(rng, zipf, SampleDocLength(rng, config)));
  }
  return std::move(builder).Build();
}

}  // namespace bayeslsh
