// Special functions underlying all BayesLSH posterior inference.
//
// The paper's three inference primitives (Eqns 3, 4 and 6) all reduce to
// evaluations of the regularized incomplete beta function
//
//   I_x(a, b) = B_x(a, b) / B(a, b),   B_x(a, b) = ∫_0^x y^(a-1) (1-y)^(b-1) dy
//
// which is the CDF of the Beta(a, b) distribution. The paper notes it is
// "typically approximated using continued fractions" in scientific computing
// libraries; since this library is dependency-free we implement that
// approximation ourselves (modified Lentz's method on the standard continued
// fraction expansion), together with the log-beta normalizer via lgamma.

#ifndef BAYESLSH_STATS_SPECIAL_FUNCTIONS_H_
#define BAYESLSH_STATS_SPECIAL_FUNCTIONS_H_

namespace bayeslsh {

// Natural log of the (complete) beta function B(a, b) = Γ(a)Γ(b)/Γ(a+b).
// Requires a > 0 and b > 0.
double LogBeta(double a, double b);

// Regularized incomplete beta function I_x(a, b) for x in [0, 1], a > 0,
// b > 0. This is the CDF of Beta(a, b) at x. Accurate to roughly 1e-14;
// converges in a few dozen continued-fraction iterations even for the large
// integer parameters (a + b up to ~10^5) that arise from hash counts.
double RegularizedIncompleteBeta(double a, double b, double x);

// Probability mass that a Beta(a, b) random variable lies in [lo, hi].
// Clamps the interval to [0, 1]; returns 0 if the clamped interval is empty.
double BetaMass(double a, double b, double lo, double hi);

// log(C(n, k)) — log of the binomial coefficient, via lgamma. Requires
// 0 <= k <= n.
double LogChoose(unsigned n, unsigned k);

}  // namespace bayeslsh

#endif  // BAYESLSH_STATS_SPECIAL_FUNCTIONS_H_
