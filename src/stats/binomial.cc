#include "stats/binomial.h"

#include <cassert>
#include <cmath>

#include "stats/special_functions.h"

namespace bayeslsh {

double BinomialPmf(int m, int n, double p) {
  assert(m >= 0 && m <= n);
  assert(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return m == 0 ? 1.0 : 0.0;
  if (p == 1.0) return m == n ? 1.0 : 0.0;
  const double log_pmf = LogChoose(static_cast<unsigned>(n),
                                   static_cast<unsigned>(m)) +
                         m * std::log(p) + (n - m) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(int m, int n, double p) {
  assert(n >= 0);
  assert(p >= 0.0 && p <= 1.0);
  if (m < 0) return 0.0;
  if (m >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // m < n here.
  // P[X <= m] = I_{1-p}(n - m, m + 1).
  return RegularizedIncompleteBeta(static_cast<double>(n - m),
                                   static_cast<double>(m + 1), 1.0 - p);
}

double MleConcentrationProbability(double s, int n, double delta) {
  assert(n >= 1);
  assert(delta > 0.0);
  // |m/n - s| < delta  <=>  (s - delta) n < m < (s + delta) n: count the
  // integers strictly inside the open interval. (The paper's §3.1 summation
  // writes closed fractional bounds; no rounding convention of that sum
  // reproduces all of Figure 1's quoted values simultaneously, so we use
  // the strict-statistical reading — see the Figure 1 bench notes in
  // EXPERIMENTS.md. The U-shape and the ~350-hashes-at-0.5 value agree.)
  // The 1e-12 nudges keep strict inequalities strict under floating-point
  // noise (e.g. (0.95 + 0.05) * n evaluating to just above n would
  // otherwise admit m = n, whose error is exactly delta, not < delta).
  const double lo_real = (s - delta) * n;
  const double hi_real = (s + delta) * n;
  int lo = static_cast<int>(std::floor(lo_real + 1e-12)) + 1;
  int hi = static_cast<int>(std::ceil(hi_real - 1e-12)) - 1;
  if (lo < 0) lo = 0;
  if (hi > n) hi = n;
  if (lo > hi) return 0.0;
  return BinomialCdf(hi, n, s) - BinomialCdf(lo - 1, n, s);
}

int RequiredHashes(double s, double delta, double gamma, int max_n) {
  assert(delta > 0.0 && gamma > 0.0 && gamma < 1.0);
  for (int n = 1; n <= max_n; ++n) {
    if (MleConcentrationProbability(s, n, delta) >= 1.0 - gamma) return n;
  }
  return max_n + 1;
}

}  // namespace bayeslsh
