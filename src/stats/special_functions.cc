#include "stats/special_functions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bayeslsh {

namespace {

// std::lgamma writes the global `signgam` on common libms, which is a data
// race once verification shards run concurrently. All arguments here are
// positive (gamma is positive), so the sign output is irrelevant — use the
// reentrant variant where the platform provides one.
inline double LGammaThreadSafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(__FreeBSD__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogBeta(double a, double b) {
  assert(a > 0 && b > 0);
  return LGammaThreadSafe(a) + LGammaThreadSafe(b) - LGammaThreadSafe(a + b);
}

namespace {

// Evaluates the continued fraction for the incomplete beta function by the
// modified Lentz method. The standard expansion is
//
//   I_x(a,b) = prefix * (1 / (1 + d_1/(1 + d_2/(1 + ...))))
//
// with d_{2m+1} = -(a+m)(a+b+m) x / ((a+2m)(a+2m+1))
// and  d_{2m}   = m (b-m) x / ((a+2m-1)(a+2m))
//
// It converges rapidly when x < (a+1)/(a+b+2); the caller uses the symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a) to ensure that.
double IncompleteBetaContinuedFraction(double a, double b, double x) {
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-15;
  constexpr int kMaxIter = 500;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    // Even step.
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0 && b > 0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;

  // log of the prefix x^a (1-x)^b / (a B(a,b)).
  const double log_prefix =
      a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);

  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_prefix) * IncompleteBetaContinuedFraction(a, b, x) / a;
  }
  // Symmetry: evaluate the mirrored fraction, which converges fast here.
  const double mirrored =
      std::exp(log_prefix) * IncompleteBetaContinuedFraction(b, a, 1.0 - x) /
      b;
  return 1.0 - mirrored;
}

double BetaMass(double a, double b, double lo, double hi) {
  lo = std::max(lo, 0.0);
  hi = std::min(hi, 1.0);
  if (lo >= hi) return 0.0;
  return RegularizedIncompleteBeta(a, b, hi) -
         RegularizedIncompleteBeta(a, b, lo);
}

double LogChoose(unsigned n, unsigned k) {
  assert(k <= n);
  return LGammaThreadSafe(static_cast<double>(n) + 1.0) -
         LGammaThreadSafe(static_cast<double>(k) + 1.0) -
         LGammaThreadSafe(static_cast<double>(n - k) + 1.0);
}

}  // namespace bayeslsh
