// Beta distribution: the conjugate prior (and posterior) used by BayesLSH
// for Jaccard similarity (paper §4.1).
//
// The prior Beta(α, β) can either be uniform (α = β = 1) or fit by the
// method of moments to a random sample of candidate-pair similarities, as
// the paper recommends:
//
//   α̂ = s̄ ( s̄(1-s̄)/s̄_v − 1 ),   β̂ = (1−s̄) ( s̄(1-s̄)/s̄_v − 1 )
//
// where s̄ and s̄_v are the sample mean and (biased) sample variance.

#ifndef BAYESLSH_STATS_BETA_DISTRIBUTION_H_
#define BAYESLSH_STATS_BETA_DISTRIBUTION_H_

#include <span>

namespace bayeslsh {

// An immutable Beta(alpha, beta) distribution on (0, 1).
class BetaDistribution {
 public:
  // Requires alpha > 0 and beta > 0.
  BetaDistribution(double alpha, double beta);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  // Probability density at s in (0, 1).
  double Pdf(double s) const;

  // log Pdf(s); -inf outside the support.
  double LogPdf(double s) const;

  // CDF at s: the regularized incomplete beta function I_s(alpha, beta).
  double Cdf(double s) const;

  // P[lo <= S <= hi], interval clamped to [0, 1].
  double Mass(double lo, double hi) const;

  double Mean() const { return alpha_ / (alpha_ + beta_); }

  double Variance() const;

  // Mode of the density. Defined for alpha > 1 && beta > 1 as
  // (alpha-1)/(alpha+beta-2); for boundary-mode shapes returns the
  // appropriate endpoint (0 or 1), and for the U-shaped / uniform cases
  // returns the mean as a sensible point summary.
  double Mode() const;

  // Bayesian update: posterior after observing m successes in n Bernoulli
  // trials with success probability S ~ this prior. Conjugacy gives
  // Beta(alpha + m, beta + (n - m)).
  BetaDistribution Posterior(int m, int n) const;

  // Method-of-moments fit from a sample mean and biased sample variance.
  // Falls back to the uniform Beta(1, 1) when the moments are degenerate
  // (variance ~ 0, or mean outside (0, 1)), which happens for pathological
  // candidate samples (e.g. all-identical similarities).
  static BetaDistribution MethodOfMoments(double mean, double variance);

  // Method-of-moments fit from raw similarity samples.
  static BetaDistribution FitMethodOfMoments(std::span<const double> samples);

 private:
  double alpha_;
  double beta_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_STATS_BETA_DISTRIBUTION_H_
