// Binomial distribution utilities, used for the *classical* (frequentist)
// similarity-estimation analysis of paper §3.
//
// With n hashes compared and true similarity s, the number of matches m is
// Binomial(n, s). The maximum-likelihood estimate ŝ = m/n has variance
// s(1-s)/n, so the number of hashes needed for a given accuracy depends on
// the unknown s — the paper's Figure 1 plots exactly that curve, which
// RequiredHashes() reproduces.

#ifndef BAYESLSH_STATS_BINOMIAL_H_
#define BAYESLSH_STATS_BINOMIAL_H_

namespace bayeslsh {

// P[X = m] for X ~ Binomial(n, p). Numerically stable in the tails (log-space
// evaluation). Requires 0 <= m <= n and p in [0, 1].
double BinomialPmf(int m, int n, double p);

// P[X <= m] for X ~ Binomial(n, p). m may be any integer (values below 0 /
// above n clamp to 0 / 1). Uses the incomplete-beta identity
// P[X <= m] = I_{1-p}(n-m, m+1).
double BinomialCdf(int m, int n, double p);

// P[|m/n - s| < delta] for m ~ Binomial(n, s): the probability that the MLE
// from n hashes lands strictly within delta of the true similarity s (the
// concentration probability of paper §3.1; see the .cc note on the paper's
// boundary convention).
double MleConcentrationProbability(double s, int n, double delta);

// The minimum number of hashes n such that the MLE ŝ_n = m/n satisfies
// P[|ŝ_n − s| < delta] >= 1 − gamma, searching n in [1, max_n].
// Returns max_n + 1 if no n in range suffices. Reproduces Figure 1.
//
// Note the concentration probability is not monotone in n (it oscillates as
// new integer match-counts enter/leave the window), so this scans n rather
// than binary-searching.
int RequiredHashes(double s, double delta, double gamma, int max_n = 20000);

}  // namespace bayeslsh

#endif  // BAYESLSH_STATS_BINOMIAL_H_
