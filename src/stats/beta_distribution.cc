#include "stats/beta_distribution.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "stats/special_functions.h"

namespace bayeslsh {

BetaDistribution::BetaDistribution(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  assert(alpha > 0 && beta > 0);
}

double BetaDistribution::Pdf(double s) const {
  if (s <= 0.0 || s >= 1.0) {
    // Density at the boundary: 0 except for shapes that diverge there; the
    // finite convention 0 keeps downstream numerics safe.
    return 0.0;
  }
  return std::exp(LogPdf(s));
}

double BetaDistribution::LogPdf(double s) const {
  if (s <= 0.0 || s >= 1.0) return -std::numeric_limits<double>::infinity();
  return (alpha_ - 1.0) * std::log(s) + (beta_ - 1.0) * std::log1p(-s) -
         LogBeta(alpha_, beta_);
}

double BetaDistribution::Cdf(double s) const {
  return RegularizedIncompleteBeta(alpha_, beta_, s);
}

double BetaDistribution::Mass(double lo, double hi) const {
  return BetaMass(alpha_, beta_, lo, hi);
}

double BetaDistribution::Variance() const {
  const double ab = alpha_ + beta_;
  return alpha_ * beta_ / (ab * ab * (ab + 1.0));
}

double BetaDistribution::Mode() const {
  if (alpha_ > 1.0 && beta_ > 1.0) {
    return (alpha_ - 1.0) / (alpha_ + beta_ - 2.0);
  }
  if (alpha_ <= 1.0 && beta_ > 1.0) return 0.0;
  if (alpha_ > 1.0 && beta_ <= 1.0) return 1.0;
  // Uniform or U-shaped: no unique interior mode; the mean is a stable
  // point summary.
  return Mean();
}

BetaDistribution BetaDistribution::Posterior(int m, int n) const {
  assert(m >= 0 && m <= n);
  return BetaDistribution(alpha_ + m, beta_ + (n - m));
}

BetaDistribution BetaDistribution::MethodOfMoments(double mean,
                                                   double variance) {
  // Guard against degenerate moments; see header.
  constexpr double kMinVariance = 1e-12;
  if (!(mean > 0.0 && mean < 1.0) || variance < kMinVariance) {
    return BetaDistribution(1.0, 1.0);
  }
  // The fit is only valid when variance < mean(1-mean) (a Beta cannot be
  // more dispersed than a Bernoulli with the same mean).
  const double spread = mean * (1.0 - mean);
  if (variance >= spread) return BetaDistribution(1.0, 1.0);
  const double common = spread / variance - 1.0;
  const double alpha = mean * common;
  const double beta = (1.0 - mean) * common;
  if (alpha <= 0.0 || beta <= 0.0) return BetaDistribution(1.0, 1.0);
  return BetaDistribution(alpha, beta);
}

BetaDistribution BetaDistribution::FitMethodOfMoments(
    std::span<const double> samples) {
  if (samples.empty()) return BetaDistribution(1.0, 1.0);
  double sum = 0.0;
  for (double s : samples) sum += s;
  const double mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= static_cast<double>(samples.size());  // Biased, as in the paper.
  return MethodOfMoments(mean, var);
}

}  // namespace bayeslsh
