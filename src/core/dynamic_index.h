// Dynamic index: LSM-style layering of a small mutable delta segment over
// the frozen PersistentIndex base, so the corpus can change while serving
// without a full rebuild per insert.
//
// The paper's pipeline is a build-once system: PersistentIndex freezes the
// whole serving state at construction, and before this subsystem any
// Add/Remove forced a complete rebuild and re-freeze. DynamicIndex applies
// the standard log-structured answer (an immutable base plus a mutable
// in-memory delta, merged at read time and compacted in the background —
// the memtable/SSTable split of LSM stores):
//
//   Add(v)     appends the vector to the delta segment: the delta's
//              Dataset grows a row, its signature stores grow an empty
//              lazily hashed row, and its banding buckets take an
//              incremental insert — O(l*k) hashing, never a rebuild.
//   Remove(id) records a tombstone; the row stays physically present in
//              its segment until the next compaction and is subtracted
//              from every query result.
//   Query()    fans out over {frozen base, delta}, maps each segment's
//              physical rows to stable logical ids, drops tombstoned
//              ids, and merges the per-segment result lists into one
//              similarity-ordered answer.
//   Compact()  folds the live rows of both segments into a new frozen
//              base (PersistentIndex::Build over the merged corpus),
//              clears the delta and the tombstone set, and preserves
//              every logical id. The rebuild runs against a snapshot
//              with no lock held — readers keep serving the old
//              segments for its whole duration — and the finished base
//              is swapped in under a brief exclusive lock that only
//              moves pointers and re-homes rows added meanwhile.
//              Signatures are pure functions of (seed, content), so the
//              new base adopts the old base's already-computed
//              signature rows verbatim (SignatureAdoption,
//              core/index_io.h) and re-hashes only former delta rows.
//
// Ids: Add assigns monotonically increasing logical ids that survive
// compaction (an id is never reused, even after Remove). QueryMatch::id
// holds logical ids, so callers can hold them across any interleaving of
// Add/Remove/Compact.
//
// Determinism: signatures and banding keys are pure functions of
// (seed, row content), so a row hashes identically whether it lives in
// the base, the delta, or a rebuilt corpus; per-candidate BayesLSH
// verification depends only on (query, candidate) — never on other
// candidates. Query results after ANY interleaving of Add/Remove/Compact
// are therefore pair-for-pair identical to a from-scratch rebuild over
// the same logical corpus, for every signature kind and thread count
// (asserted by tests/dynamic_index_test.cc). The one read-side cost of
// deferral: tombstoned rows remain candidates until compaction (they are
// verified, then subtracted), so QueryStats may count more candidates
// than a rebuild would — the classic LSM read amplification, reclaimed by
// Compact().
//
// Concurrency: queries and Save (both read-only) take a shared lock and
// may run concurrently from any number of threads (the segment searchers
// are internally synchronized); Add/Remove take an exclusive lock and
// may be called from any thread, serialized against each other, against
// queries, and against Save. Compact (explicit or auto-triggered) runs
// its rebuild lock-free against a snapshot; concurrent compactions are
// serialized among themselves, and only the final segment swap excludes
// readers.
//
// Durability: without a WAL, mutations are durable only at the next
// SaveFile — a crash loses everything since the last checkpoint. After
// AttachWal(path), every Add/Remove is appended to the checksummed log
// (core/wal.h, format BLSHWL1E) and flushed BEFORE it takes effect or is
// acknowledged; reattaching after a crash replays the log over the
// manifest checkpoint, so the recovered index is query-identical to a
// from-scratch rebuild of exactly the acknowledged mutation prefix.
// SaveFile checkpoints the full state and resets the log (replay is
// idempotent across the crash window between those two steps). Log
// corruption that cannot be a torn tail fails closed with WalError.
//
// Persistence: Save/Load use the versioned segment manifest format
// (magic BLSHDX1E — docs/FORMATS.md, "Dynamic index manifest"): logical
// id maps, the embedded frozen base index, the delta rows, and the
// tombstone list, with a fingerprint end marker. Loading rebuilds the
// delta's (small, by invariant) serving state; malformed manifests throw
// IndexError and the CLI maps them to exit code 2.

#ifndef BAYESLSH_CORE_DYNAMIC_INDEX_H_
#define BAYESLSH_CORE_DYNAMIC_INDEX_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include <shared_mutex>

#include "core/index_io.h"
#include "core/query_search.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

// On-disk manifest version written to and accepted from manifest files.
inline constexpr uint32_t kManifestFormatVersion = 1;

struct DynamicIndexConfig {
  // Serving threshold; 0 serves at the base index's build threshold.
  // Thresholds below the build threshold raise the banding false-negative
  // rate beyond the configured ε, exactly as for QuerySearcher.
  double threshold = 0.0;

  // Exact verification of unpruned candidates (the Lite behaviour).
  bool exact_verification = false;

  // Worker threads for segment queries, QueryBatch sharding and
  // compaction builds (0 = all hardware threads, 1 = sequential).
  uint32_t num_threads = 1;

  // Size-tiered auto-compaction triggers, checked after every mutation;
  // a trigger schedules one background compaction (never stacking a
  // second behind a running one — the policy re-fires on the next
  // mutation if still due). 0 disables a trigger; both default off, so
  // compaction stays explicit unless asked for.
  //
  // Fires when the delta holds at least this many rows (the memtable
  // size trigger: bounds delta query cost and manifest reload work).
  uint32_t auto_compact_delta_rows = 0;
  // Fires when tombstones exceed this fraction of all physical rows
  // (the garbage trigger: bounds ghost-candidate read amplification).
  double auto_compact_tombstone_fraction = 0.0;

  // With a WAL attached, fsync the log on every acknowledged mutation.
  // Off, the guarantee is process-crash durability (the data reached the
  // kernel — it survives SIGKILL, not power loss); on, it extends to
  // machine crashes at the cost of a device round trip per mutation.
  bool wal_sync = false;
};

// What AttachWal recovered from an existing log (all zero for a fresh
// one): applied counts mutations replayed into the index, skipped counts
// records already covered by the manifest checkpoint (the crash window
// between checkpoint write and log reset), tail_truncated reports that a
// torn tail — an in-flight, never-acknowledged append — was discarded
// and repaired.
struct WalRecovery {
  uint64_t records = 0;
  uint64_t applied = 0;
  uint64_t skipped = 0;
  bool tail_truncated = false;
};

// A serveable, updatable index: frozen base + mutable delta + tombstones.
// Measure, seed, b-bit width and banding shape are taken from the base
// index and apply to every future delta row and compaction.
class DynamicIndex {
 public:
  // Takes ownership of the frozen base. Logical ids 0..n-1 map to the
  // base's rows. Throws std::invalid_argument on a null base.
  DynamicIndex(std::unique_ptr<PersistentIndex> base,
               const DynamicIndexConfig& cfg);

  ~DynamicIndex();
  DynamicIndex(const DynamicIndex&) = delete;
  DynamicIndex& operator=(const DynamicIndex&) = delete;

  // Appends one vector to the delta segment and returns its logical id.
  // The vector must follow the measure conventions of sim/similarity.h
  // (kCosine: L2-normalized; kJaccard/kBinaryCosine: binary) and its
  // dimensions must be < num_dims() — std::invalid_argument otherwise.
  // Empty vectors are accepted (they can never match a query), matching
  // the batch build's handling of empty corpus rows.
  uint32_t Add(const SparseVectorView& v);

  // Tombstones a logical id. Returns false (and changes nothing) when the
  // id was never assigned or is already removed — so callers can fail
  // closed on typo'd ids. The row is physically reclaimed at the next
  // Compact().
  bool Remove(uint32_t id);

  // True iff `id` is assigned and not tombstoned.
  bool Contains(uint32_t id) const;

  // Merge-on-query serving: all live rows x with s(x, q) >= threshold,
  // sorted by decreasing similarity (ties by ascending logical id) —
  // pair-for-pair what a from-scratch rebuild over the live corpus would
  // return. stats, when given, receives the summed segment stats (see the
  // header comment on read amplification; threads_used is the max over
  // segments). Safe to call concurrently from any number of threads.
  std::vector<QueryMatch> Query(const SparseVectorView& q,
                                QueryStats* stats = nullptr) const;

  // The k best live matches; merged across segments BEFORE truncation, so
  // a tombstoned base row can never displace a live delta row from the
  // top k.
  std::vector<QueryMatch> QueryTopK(const SparseVectorView& q, uint32_t k,
                                    QueryStats* stats = nullptr) const;

  // Batched serving: slot i answers queries[i], each merged across
  // segments exactly as Query() does; top_k != 0 truncates per query
  // after the merge. Results are identical to a serial Query() loop for
  // any thread count.
  std::vector<std::vector<QueryMatch>> QueryBatch(
      std::span<const SparseVectorView> queries,
      QueryStats* stats = nullptr, uint32_t top_k = 0) const;

  // Folds the delta and the tombstones into a new frozen base over the
  // live rows (in logical-id order), preserving every logical id, and
  // resets the delta to the rows added after the compaction snapshot.
  // Queries before and after return identical results (asserted); a
  // Compact with an empty delta and no tombstones is a no-op, so
  // double-compaction is idempotent.
  //
  // The rebuild runs on the calling thread but OFF the serving lock:
  // concurrent queries keep serving the old segments for its whole
  // duration, and only the final pointer swap takes the exclusive lock
  // (re-homing rows added meanwhile — they stay in the delta). Old-base
  // signatures are adopted, not recomputed (see the header comment).
  // Concurrent Compact calls (including auto-triggered background ones)
  // serialize against each other.
  void Compact();

  // Attaches (and replays) the write-ahead log at `path` — see the
  // header comment on durability. Call once, before the first mutation;
  // a fresh path starts an empty log, an existing one is replayed over
  // the current (checkpoint) state and repaired if its tail was torn.
  // Throws WalError on log corruption that cannot be a torn tail (the
  // fail-closed cases), std::logic_error if a WAL is already attached.
  WalRecovery AttachWal(const std::string& path);

  // Blocks until no background (auto-triggered) compaction is running,
  // then rethrows the error that ended the most recent one, if any.
  // Called by the destructor (which swallows errors instead).
  void WaitForCompaction();

  // Bounded drain: waits at most `timeout_seconds` for the background
  // compaction to finish. Returns true (and rethrows any saved error)
  // when the worker is drained within the budget; false when the
  // compaction is still running at expiry — the worker keeps running and
  // a later wait can reap it. The server drain path uses this so one
  // wedged compaction cannot hang shutdown: report, don't block forever.
  bool WaitForCompaction(double timeout_seconds);

  // Test hook: runs at the start of every compaction body, while
  // concurrent readers are still serving the old segments — lets tests
  // make a compaction arbitrarily slow (or wedge it) to pin the bounded
  // WaitForCompaction contract. Empty function clears the hook.
  void SetCompactHookForTest(std::function<void()> hook);

  // Crash-harness fault injection, forwarded to the attached WAL (see
  // WalWriter::SetCrashAfterBytes): after `total_bytes` physically
  // logged bytes, die mid-append leaving a genuinely torn log. Throws
  // std::logic_error without an attached WAL.
  void SetWalCrashAfterBytes(uint64_t total_bytes,
                             std::function<void()> on_crash = {});

  // Serializes the manifest (docs/FORMATS.md, "Dynamic index manifest").
  // Deterministic for a given state. Throws IndexError on write failure.
  void Save(std::ostream& out) const;
  void SaveFile(const std::string& path) const;

  // Deserializes a manifest. Throws IndexError on any malformed input —
  // bad magic or version, nonzero reserved field, id maps out of order,
  // tombstones naming unknown ids, embedded section corruption, or a
  // fingerprint/end-marker mismatch. LoadFile fails closed on paths that
  // are not readable non-empty regular files.
  static std::unique_ptr<DynamicIndex> Load(std::istream& in,
                                            const DynamicIndexConfig& cfg);
  static std::unique_ptr<DynamicIndex> LoadFile(
      const std::string& path, const DynamicIndexConfig& cfg);

  // True iff the file starts with the dynamic-manifest magic — the cheap
  // dispatch test the CLI uses to serve either index kind behind one
  // --index flag. False on unreadable or short files (the loaders then
  // produce the real diagnostic).
  static bool SniffFile(const std::string& path);

  // Snapshot of the live corpus in ascending logical-id order (base rows
  // first, then delta rows — base ids always precede delta ids), with
  // the matching logical ids written to *ids when non-null. Takes the
  // shared lock, so the snapshot is a consistent cut against concurrent
  // mutations. This is the repartitioning source the sharded serving
  // front-end (core/sharded_index.h) uses to spread one loaded index
  // over K shards.
  Dataset LiveCorpus(std::vector<uint32_t>* ids = nullptr) const;

  // Shape and config accessors (safe from any thread).
  Measure measure() const;
  uint32_t num_dims() const;
  double serve_threshold() const;
  uint64_t seed() const;
  uint32_t bbit() const;             // 0 = full-width hashes.
  uint32_t num_bands() const;        // Banding shape shared by all
  uint32_t hashes_per_band() const;  //   segments and compactions.

  // kKernelCosine only (defaults / null otherwise): the kernel spec,
  // KLSH family shape, and anchor rows shared by every segment — the
  // family is pinned by the base at construction and survives
  // compaction, so these are stable for the life of the index.
  const KernelSpec& kernel_spec() const;
  const KlshParams& klsh_params() const;
  std::shared_ptr<const Dataset> klsh_anchors() const;

  uint32_t num_base_rows() const;   // Physical rows in the frozen base.
  uint32_t num_delta_rows() const;  // Physical rows in the delta.
  uint32_t num_tombstones() const;
  uint32_t num_live() const;        // base + delta - tombstones.

  // Verification hash work recorded by the current base index's own
  // store (bits for SRP, underlying minwise hashes otherwise) —
  // instrumentation for the adoption guarantee: a compaction that folds
  // only tombstones produces a base whose store did zero fresh hashing.
  uint64_t base_hash_work() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_DYNAMIC_INDEX_H_
