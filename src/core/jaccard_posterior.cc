#include "core/jaccard_posterior.h"

#include <cassert>

namespace bayeslsh {

JaccardPosterior::JaccardPosterior(double threshold, BetaDistribution prior)
    : threshold_(threshold), prior_(prior) {
  assert(threshold > 0.0 && threshold < 1.0);
}

double JaccardPosterior::ProbAboveThreshold(int m, int n) const {
  assert(m >= 0 && m <= n);
  const BetaDistribution post = prior_.Posterior(m, n);
  return 1.0 - post.Cdf(threshold_);
}

double JaccardPosterior::Estimate(int m, int n) const {
  assert(m >= 0 && m <= n);
  return prior_.Posterior(m, n).Mode();
}

double JaccardPosterior::Concentration(int m, int n, double delta) const {
  assert(m >= 0 && m <= n);
  assert(delta > 0.0);
  const BetaDistribution post = prior_.Posterior(m, n);
  const double est = post.Mode();
  return post.Mass(est - delta, est + delta);
}

}  // namespace bayeslsh
