// Serving robustness primitives: admission control, shard health tracking,
// and fault injection — the degradation machinery behind the sharded
// serving layer (core/sharded_index.h) and the CLI `serve` front-end.
//
// A long-lived server has three ways to fall over under stress, and each
// gets a first-class control here:
//
//   Overload.   A client flooding the queue turns every other client's
//               latency unbounded. The TokenBucket + AdmissionController
//               pair turns overload into an *immediate*, cheap
//               RejectedOverload instead: each client has a token bucket
//               (rate + burst), and the server has one bounded in-flight
//               depth. A request that cannot get both a token and a slot
//               is rejected before it touches any shard.
//
//   Slow/dead shards.  One wedged shard must degrade answers, not hang
//               the server. Each shard gets a CircuitBreaker: consecutive
//               failures (errors or per-shard timeouts) open it, an open
//               breaker skips the shard instantly (partial answers), and
//               after a backoff one half-open probe is let through — a
//               success closes the breaker, a failure re-opens it with a
//               fresh backoff. The classic state machine:
//
//                       failures >= threshold
//                 closed ----------------------> open
//                   ^                              | backoff elapsed
//                   |  probe succeeds              v
//                   +------------------------- half-open
//                              probe fails ----^   | (one probe in flight)
//                              (back to open) <----+
//
//   Faults you cannot wait for in tests.  ShardFaultInjector is the hook
//               the degraded-mode tests and the open-loop bench use to
//               *make* a shard slow (added latency), failing (fail-next-N
//               throws ShardFault) or wedged (block until unwedged) — so
//               every degraded path above is pinned deterministically.
//
// Time: the primitives never read a clock. Every decision takes an
// explicit `now_seconds` (any monotonic origin), so unit tests drive the
// state machines with a fake clock and the serving layer feeds them
// steady_clock time. All classes here are internally synchronized and
// safe to share across serving threads.

#ifndef BAYESLSH_CORE_SERVE_CONTROL_H_
#define BAYESLSH_CORE_SERVE_CONTROL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bayeslsh {

// Thrown by ShardFaultInjector::BeforeShardQuery for an injected failure;
// the shard executor reports it like any other shard error (a breaker
// failure), so injected and organic faults exercise the same path.
class ShardFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

// Classic token bucket: `burst` capacity, refilled at `rate` tokens per
// second, one token per admitted request. rate == 0 disables the limit
// (TryAcquire always succeeds). Not internally synchronized — the
// AdmissionController guards its buckets with one lock.
class TokenBucket {
 public:
  TokenBucket(double tokens_per_second, double burst, double now_seconds);

  // Consumes one token if available; refills lazily from the elapsed
  // time. `now_seconds` must not run backwards (same origin per bucket).
  bool TryAcquire(double now_seconds);

  double tokens(double now_seconds) const;

 private:
  void RefillLocked(double now_seconds);

  double rate_ = 0.0;
  double burst_ = 0.0;
  mutable double tokens_ = 0.0;
  mutable double last_ = 0.0;
};

struct AdmissionConfig {
  // Per-client token bucket: sustained admissions per second, and the
  // burst capacity above it. rate 0 = no rate limit; burst 0 = a capacity
  // of max(rate, 1).
  double tokens_per_second = 0.0;
  double burst = 0.0;

  // Server-wide bound on concurrently admitted (in-flight) requests —
  // the queue-depth limit that keeps an overloaded server's latency
  // bounded. 0 = unlimited.
  uint32_t max_in_flight = 0;
};

// Per-client token buckets behind one server-wide in-flight bound.
// Admission is all-or-nothing and immediate: a request that cannot get
// both a token and a slot is rejected now, never queued behind a flood.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& cfg);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // RAII admission: holds one in-flight slot until destruction (or
  // Release()). A default-constructed / rejected ticket holds nothing.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    ~Ticket();

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool admitted() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  // Admits or rejects `client` at `now_seconds`. On rejection the
  // returned ticket reports !admitted() and nothing was consumed (a
  // request denied an in-flight slot does not burn its token — the
  // client is not at fault for server-wide pressure).
  Ticket TryAdmit(std::string_view client, double now_seconds);

  uint32_t in_flight() const;
  uint64_t admitted_total() const;
  uint64_t rejected_total() const;

 private:
  void ReleaseSlot();

  AdmissionConfig cfg_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, TokenBucket> buckets_;
  uint32_t in_flight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
};

// ---------------------------------------------------------------------------
// Shard health: the circuit breaker
// ---------------------------------------------------------------------------

struct BreakerConfig {
  // Consecutive failures that open the breaker.
  uint32_t failure_threshold = 3;
  // Seconds an open breaker rejects instantly before letting one
  // half-open probe through.
  double open_seconds = 1.0;
};

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

// Per-shard consecutive-failure circuit breaker with a timed half-open
// probe (see the header comment for the state machine). Thread-safe;
// callers pair every AllowRequest() == true with exactly one
// RecordSuccess() or RecordFailure().
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& cfg);

  // True when a request may be sent to the shard. While open, false
  // until the backoff elapses; then the breaker moves to half-open and
  // admits exactly one probe (further requests are refused until that
  // probe's outcome is recorded).
  bool AllowRequest(double now_seconds);

  void RecordSuccess();
  void RecordFailure(double now_seconds);

  // Neutral outcome: the caller abandoned the request (a client-imposed
  // query deadline expired) and learned nothing about shard health —
  // releases a half-open probe slot, changes nothing else.
  void RecordAbandoned();

  // The state a request at `now_seconds` would observe (an elapsed open
  // backoff reports kHalfOpen). Read-only — never starts a probe.
  BreakerState state(double now_seconds) const;
  uint32_t consecutive_failures() const;

 private:
  BreakerConfig cfg_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t failures_ = 0;
  double opened_at_ = 0.0;
  bool probe_in_flight_ = false;
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

// Test/bench hook applied by the sharded index's shard executors before
// every shard sub-query (core/sharded_index.h). Three fault shapes:
//
//   FailNext(s, n)    the next n sub-queries on shard s throw ShardFault;
//   AddLatency(s, d)  every sub-query on shard s first sleeps d seconds
//                     (a slow shard — drives deadline and tail-latency
//                     behaviour);
//   Wedge(s)          sub-queries on shard s block until Unwedge(s) —
//                     a genuinely stuck shard: only the shard's executor
//                     thread hangs; the router times out and degrades.
//
// All methods are thread-safe. Shutdown() (called by the owning index's
// destructor) permanently releases wedged waits as ShardFault so
// executors can drain and join.
class ShardFaultInjector {
 public:
  explicit ShardFaultInjector(uint32_t num_shards);

  void FailNext(uint32_t shard, uint32_t n);
  void AddLatency(uint32_t shard, double seconds);
  void Wedge(uint32_t shard);
  void Unwedge(uint32_t shard);

  // Heals every shard: clears fail-next counts and added latency,
  // unwedges everything.
  void Clear();

  // Permanently releases current and future wedged waits (they throw
  // ShardFault). One-way; used at teardown.
  void Shutdown();

  // Executor-side hook: applies the shard's injected faults in order —
  // fail-next (throws), added latency (sleeps), wedge (blocks). Throws
  // ShardFault on an injected failure or a shutdown-released wedge.
  void BeforeShardQuery(uint32_t shard);

 private:
  struct ShardFaults {
    uint32_t fail_next = 0;
    double added_latency_seconds = 0.0;
    bool wedged = false;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ShardFaults> shards_;
  bool shutdown_ = false;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_SERVE_CONTROL_H_
