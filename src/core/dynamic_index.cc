#include "core/dynamic_index.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/prng.h"
#include "core/wal.h"
#include "vec/binary_io.h"
#include "vec/io.h"

namespace bayeslsh {

namespace {

// 8 bytes: name + "DX" (dynamic index) + format generation + the trailing
// 'E' endianness canary shared by every binary format (docs/FORMATS.md).
constexpr char kManifestMagic[8] = {'B', 'L', 'S', 'H', 'D', 'X', '1', 'E'};

// WAL record op tags (docs/FORMATS.md, "Write-ahead log").
constexpr uint8_t kWalOpAdd = 1;
constexpr uint8_t kWalOpRemove = 2;

// The merged-result ordering: decreasing similarity, ties by ascending
// logical id — exactly the QuerySearcher result order, so a merged answer
// is byte-for-byte what a rebuilt single-segment searcher returns.
void SortMerged(std::vector<QueryMatch>* out) {
  std::sort(out->begin(), out->end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
            });
}

std::vector<std::pair<DimId, float>> RowEntries(const SparseVectorView& v) {
  std::vector<std::pair<DimId, float>> entries;
  entries.reserve(v.size());
  for (uint32_t i = 0; i < v.size(); ++i) {
    entries.emplace_back(v.indices[i], v.values[i]);
  }
  return entries;
}

// True iff `id` occurs in the sorted vector.
bool IdInSorted(const std::vector<uint32_t>& ids, uint32_t id) {
  return std::binary_search(ids.begin(), ids.end(), id);
}

// WAL add record: op, logical id, nnz, then the raw (indices, values)
// arrays — the vector exactly as the caller passed it (replay re-applies
// AppendRow, whose duplicate-merge/zero-drop normalization is
// deterministic, so logging pre-normalized entries is equivalent).
std::vector<uint8_t> EncodeWalAdd(uint32_t id, const SparseVectorView& v) {
  const uint32_t nnz = static_cast<uint32_t>(v.size());
  std::vector<uint8_t> rec(9 + static_cast<size_t>(nnz) * 8);
  rec[0] = kWalOpAdd;
  std::memcpy(rec.data() + 1, &id, 4);
  std::memcpy(rec.data() + 5, &nnz, 4);
  if (nnz > 0) {
    std::memcpy(rec.data() + 9, v.indices.data(),
                static_cast<size_t>(nnz) * 4);
    std::memcpy(rec.data() + 9 + static_cast<size_t>(nnz) * 4,
                v.values.data(), static_cast<size_t>(nnz) * 4);
  }
  return rec;
}

std::vector<uint8_t> EncodeWalRemove(uint32_t id) {
  std::vector<uint8_t> rec(5);
  rec[0] = kWalOpRemove;
  std::memcpy(rec.data() + 1, &id, 4);
  return rec;
}

}  // namespace

struct DynamicIndex::Impl {
  DynamicIndexConfig cfg;
  QuerySearchConfig serve_cfg;  // Resolved against the base at construction.

  // Invariants of the index's whole lifetime (compaction preserves all
  // of them), cached so the lock-free accessors never dereference `base`
  // while a concurrent compaction is replacing it.
  Measure measure = Measure::kCosine;
  uint32_t num_dims = 0;
  uint64_t seed = 0;

  // Frozen base segment: the persistent index plus a warm searcher over
  // it. base_ids maps physical base row -> logical id (strictly
  // ascending).
  std::unique_ptr<PersistentIndex> base;
  std::vector<uint32_t> base_ids;
  std::unique_ptr<QuerySearcher> base_searcher;

  // Mutable delta segment: an append-only dataset, the searcher that
  // grows with it (SyncAppendedRows), and the physical-row -> logical-id
  // map (strictly ascending, every id greater than every base id).
  Dataset delta_data;
  std::vector<uint32_t> delta_ids;
  std::unique_ptr<QuerySearcher> delta_searcher;

  // Logical ids removed but not yet compacted away.
  std::unordered_set<uint32_t> tombstones;

  // Next logical id Add() will assign; ids are never reused.
  uint32_t next_id = 0;

  // Queries shared, mutations exclusive (see the header comment).
  mutable std::shared_mutex mu;

  // Durability: attached write-ahead log, or null. Mutated only under an
  // exclusive hold of `mu` (appends) — except Reset in SaveFile, which
  // also holds `mu` exclusively when a WAL is attached.
  std::unique_ptr<WalWriter> wal;

  // Compaction serialization: at most one rebuild at a time, so the base
  // pointer a snapshot captured stays valid until that rebuild's own
  // swap. Never acquired while holding `mu`.
  std::mutex compact_mu;

  // Background worker management (auto-triggered compactions). worker_mu
  // guards the thread handle, the scheduled flag and the saved error;
  // never acquired while holding `mu` or `compact_mu`.
  std::mutex worker_mu;
  std::thread worker;
  bool compact_scheduled = false;
  std::exception_ptr compact_error;
  // Signaled when compact_scheduled flips to false — the bounded
  // WaitForCompaction overload waits on it instead of joining blind.
  std::condition_variable worker_cv;

  // Test-only slow/wedged-compaction hook, run at the top of CompactLsm
  // while compact_mu is held; compact_mu also guards the assignment.
  std::function<void()> compact_hook;

  ~Impl() {
    // The public destructor already waited; this is the backstop for a
    // constructor failure path.
    std::thread t;
    {
      std::lock_guard<std::mutex> lk(worker_mu);
      t = std::move(worker);
    }
    if (t.joinable()) t.join();
  }

  // The delta serves single-threaded: results are thread-count invariant
  // by the engine's determinism guarantee, the segment is small by
  // invariant, and a second worker pool per index (torn down and rebuilt
  // at every compaction) would be pure overhead.
  std::unique_ptr<QuerySearcher> MakeDeltaSearcher() {
    QuerySearchConfig delta_cfg = serve_cfg;
    delta_cfg.num_threads = 1;
    auto searcher = std::make_unique<QuerySearcher>(&delta_data, delta_cfg);
    searcher->SyncAppendedRows();
    return searcher;
  }

  // (Re)creates the empty delta and both segment searchers — after
  // construction and after load.
  void ResetDeltaAndServing() {
    delta_searcher.reset();
    base_searcher.reset();
    delta_data = Dataset(base->data().num_dims(), {0}, {}, {});
    base_searcher = std::make_unique<QuerySearcher>(base.get(), serve_cfg);
    delta_searcher = MakeDeltaSearcher();
  }

  bool LiveLocked(uint32_t id) const {
    if (tombstones.count(id) != 0) return false;
    return IdInSorted(base_ids, id) || IdInSorted(delta_ids, id);
  }

  // The one delta growth path: append the row, keep the delta searcher
  // in sync, assign the next logical id. Callers hold `mu` exclusively
  // and have validated the entries.
  void ApplyAddLocked(const std::vector<std::pair<DimId, float>>& entries) {
    delta_data.AppendRow(entries);
    delta_searcher->SyncAppendedRows();
    delta_ids.push_back(next_id++);
  }

  // Replays one WAL record onto the current state. Replay is idempotent
  // against the checkpoint (SaveFile writes the manifest, then resets
  // the log; a crash between the two leaves records the manifest already
  // covers): an add below next_id and a remove of an id that is no
  // longer live are skips, not errors. Everything else out of sequence
  // means the log does not belong to this manifest — fail closed.
  void ApplyWalRecord(std::span<const uint8_t> rec, WalRecovery* out) {
    if (rec.empty()) throw WalError("wal replay: empty record");
    const uint8_t op = rec[0];
    if (op == kWalOpAdd) {
      if (rec.size() < 9) throw WalError("wal replay: short add record");
      uint32_t id, nnz;
      std::memcpy(&id, rec.data() + 1, 4);
      std::memcpy(&nnz, rec.data() + 5, 4);
      if (rec.size() != 9 + static_cast<size_t>(nnz) * 8) {
        throw WalError("wal replay: add record length disagrees with its "
                       "nnz");
      }
      if (id > next_id) {
        throw WalError("wal replay: add skips logical id " +
                       std::to_string(next_id) +
                       " (log does not match this manifest)");
      }
      if (id < next_id) {
        ++out->skipped;  // Already in the checkpoint.
        return;
      }
      std::vector<std::pair<DimId, float>> entries(nnz);
      for (uint32_t i = 0; i < nnz; ++i) {
        std::memcpy(&entries[i].first, rec.data() + 9 + i * 4, 4);
        std::memcpy(&entries[i].second,
                    rec.data() + 9 + static_cast<size_t>(nnz) * 4 + i * 4, 4);
      }
      try {
        ApplyAddLocked(entries);
      } catch (const std::invalid_argument& e) {
        throw WalError(std::string("wal replay: add record does not fit "
                                   "this index: ") + e.what());
      }
      ++out->applied;
    } else if (op == kWalOpRemove) {
      if (rec.size() != 5) {
        throw WalError("wal replay: malformed remove record");
      }
      uint32_t id;
      std::memcpy(&id, rec.data() + 1, 4);
      if (id >= next_id) {
        throw WalError("wal replay: remove of never-assigned logical id " +
                       std::to_string(id) +
                       " (log does not match this manifest)");
      }
      if (!LiveLocked(id)) {
        ++out->skipped;  // Already tombstoned or compacted away.
        return;
      }
      tombstones.insert(id);
      ++out->applied;
    } else {
      throw WalError("wal replay: unknown op tag " + std::to_string(op));
    }
  }

  // True when a size-tiered trigger is due (caller holds `mu`).
  bool AutoCompactDueLocked() const {
    if (cfg.auto_compact_delta_rows > 0 &&
        delta_ids.size() >= cfg.auto_compact_delta_rows) {
      return true;
    }
    if (cfg.auto_compact_tombstone_fraction > 0.0) {
      const uint64_t total = base_ids.size() + delta_ids.size();
      if (total > 0 &&
          static_cast<double>(tombstones.size()) >=
              cfg.auto_compact_tombstone_fraction *
                  static_cast<double>(total)) {
        return true;
      }
    }
    return false;
  }

  // Launches one background compaction unless one is already running —
  // the policy re-fires on the next mutation if still due, so triggers
  // never stack. Callers must NOT hold `mu`.
  void ScheduleCompact() {
    std::lock_guard<std::mutex> lk(worker_mu);
    if (compact_scheduled) return;
    if (worker.joinable()) worker.join();  // Reap the finished predecessor.
    compact_scheduled = true;
    worker = std::thread([this] {
      std::exception_ptr err;
      try {
        CompactLsm();
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk2(worker_mu);
        if (err != nullptr) compact_error = err;
        compact_scheduled = false;
      }
      worker_cv.notify_all();
    });
  }

  // The compaction body: snapshot under a shared lock, rebuild with no
  // lock held (readers keep serving the old segments), swap under a
  // brief exclusive lock. Runs on the caller's thread for an explicit
  // Compact() and on the worker for auto-triggered ones; compact_mu
  // serializes the two.
  void CompactLsm() {
    std::lock_guard<std::mutex> serial(compact_mu);
    if (compact_hook) compact_hook();

    Dataset delta_snap(num_dims, {0}, {}, {});
    std::vector<uint32_t> base_ids_snap, delta_ids_snap;
    std::unordered_set<uint32_t> tomb_snap;
    const PersistentIndex* old_base = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(mu);
      // Nothing to fold in: keep the base untouched, so double-compaction
      // is an exact no-op (idempotence, asserted by tests).
      if (delta_ids.empty() && tombstones.empty()) return;
      // `base` is stable for the whole unlocked rebuild: only a
      // compaction swap replaces it, and compact_mu serializes us
      // against every other compaction.
      old_base = base.get();
      base_ids_snap = base_ids;
      delta_ids_snap = delta_ids;
      delta_snap = delta_data;
      tomb_snap = tombstones;
    }

    // Merged live corpus in ascending logical-id order (base ids are
    // ascending and every delta id exceeds them) — what a from-scratch
    // build over the live corpus would index. Surviving base rows donate
    // their already-computed signatures; former delta rows hash fresh
    // (their signatures live in the delta searcher's store, which grows
    // under concurrent queries this thread is not locked against).
    DatasetBuilder builder(num_dims);
    std::vector<uint32_t> ids;
    SignatureAdoption adopt;
    adopt.source = old_base;
    ids.reserve(base_ids_snap.size() + delta_ids_snap.size());
    adopt.source_rows.reserve(ids.capacity());
    for (uint32_t r = 0; r < base_ids_snap.size(); ++r) {
      const uint32_t id = base_ids_snap[r];
      if (tomb_snap.count(id) != 0) continue;
      builder.AddRow(RowEntries(old_base->data().Row(r)));
      ids.push_back(id);
      adopt.source_rows.push_back(r);
    }
    for (uint32_t r = 0; r < delta_ids_snap.size(); ++r) {
      const uint32_t id = delta_ids_snap[r];
      if (tomb_snap.count(id) != 0) continue;
      builder.AddRow(RowEntries(delta_snap.Row(r)));
      ids.push_back(id);
      adopt.source_rows.push_back(SignatureAdoption::kFreshRow);
    }

    IndexBuildConfig build_cfg;
    build_cfg.measure = old_base->measure();
    build_cfg.threshold = old_base->build_threshold();
    build_cfg.banding.hashes_per_band = old_base->hashes_per_band();
    build_cfg.banding.num_bands = old_base->num_bands();
    build_cfg.seed = old_base->seed();
    build_cfg.bbit = old_base->bbit();
    build_cfg.num_threads = cfg.num_threads;
    // Keep the old base's KLSH family: adoption requires it (signatures
    // are functions of the anchors), and so does segment identity.
    if (old_base->measure() == Measure::kKernelCosine) {
      build_cfg.kernel = old_base->kernel_spec();
      build_cfg.klsh = old_base->klsh_params();
      build_cfg.klsh_anchors = old_base->klsh_anchors();
    }
    std::unique_ptr<PersistentIndex> new_base = PersistentIndex::Build(
        std::move(builder).Build(), build_cfg, &adopt);
    // The warm searcher copies every signature row, O(corpus) — build it
    // off-lock too, so the swap below stays pointer-cheap.
    auto new_searcher =
        std::make_unique<QuerySearcher>(new_base.get(), serve_cfg);

    // Swap. The old segments are moved into locals and destroyed after
    // the unlock — freeing a corpus-sized index under the exclusive lock
    // would stall readers for no reason.
    std::unique_ptr<PersistentIndex> dead_base;
    std::unique_ptr<QuerySearcher> dead_base_searcher, dead_delta_searcher;
    {
      std::unique_lock<std::shared_mutex> lock(mu);
      // Rows added since the snapshot stay in the (new) delta; removals
      // since the snapshot stay tombstones — they may target rows the
      // new base kept, and AppendLive keeps suppressing them either way.
      Dataset new_delta(num_dims, {0}, {}, {});
      std::vector<uint32_t> new_delta_ids;
      for (uint32_t r = static_cast<uint32_t>(delta_ids_snap.size());
           r < delta_ids.size(); ++r) {
        new_delta.AppendRow(RowEntries(delta_data.Row(r)));
        new_delta_ids.push_back(delta_ids[r]);
      }
      for (const uint32_t id : tomb_snap) tombstones.erase(id);

      dead_base_searcher = std::move(base_searcher);
      dead_delta_searcher = std::move(delta_searcher);
      dead_base = std::move(base);
      base = std::move(new_base);
      base_ids = std::move(ids);
      base_searcher = std::move(new_searcher);
      delta_data = std::move(new_delta);
      delta_ids = std::move(new_delta_ids);
      // Rebuilt under the lock, but over the post-snapshot suffix only —
      // a brief, bounded amount of hashing.
      delta_searcher = MakeDeltaSearcher();
    }
  }

  // Maps one segment's matches to logical ids, dropping tombstones.
  // Each dropped match is a ghost candidate: verification work the
  // deferred delete wasted (reclaimed by compaction).
  void AppendLive(const std::vector<QueryMatch>& matches,
                  const std::vector<uint32_t>& ids,
                  std::vector<QueryMatch>* out, uint64_t* ghosts) const {
    for (const QueryMatch& m : matches) {
      const uint32_t id = ids[m.id];
      if (tombstones.count(id) == 0) {
        out->push_back({id, m.sim});
      } else if (ghosts != nullptr) {
        ++*ghosts;
      }
    }
  }

  std::vector<QueryMatch> MergeSegments(
      const std::vector<QueryMatch>& base_matches,
      const std::vector<QueryMatch>& delta_matches, uint64_t* ghosts) const {
    std::vector<QueryMatch> out;
    out.reserve(base_matches.size() + delta_matches.size());
    AppendLive(base_matches, base_ids, &out, ghosts);
    AppendLive(delta_matches, delta_ids, &out, ghosts);
    SortMerged(&out);
    return out;
  }

  // The manifest integrity fingerprint: a Mix64 chain over the header
  // counts, every id in every map, the embedded base's own fingerprint,
  // and the delta rows' full CSR content — the end marker checked on
  // load. The delta content matters: the base protects itself with its
  // own fingerprint, and without this fold the delta dataset's values
  // would be the one section a flipped byte could corrupt silently (the
  // CSR structure checks validate shape, not weights).
  uint64_t ManifestFingerprint(
      const std::vector<uint32_t>& sorted_tombstones) const {
    uint64_t fp = Mix64(kManifestFormatVersion, next_id);
    fp = Mix64(fp, base_ids.size(), delta_ids.size());
    fp = Mix64(fp, sorted_tombstones.size(), base->Fingerprint());
    for (const uint32_t id : base_ids) fp = Mix64(fp, id);
    for (const uint32_t id : delta_ids) fp = Mix64(fp, id);
    for (const uint32_t id : sorted_tombstones) fp = Mix64(fp, id);
    fp = Mix64(fp, delta_data.num_dims(), delta_data.nnz());
    for (const uint64_t p : delta_data.indptr()) fp = Mix64(fp, p);
    for (const DimId d : delta_data.indices()) fp = Mix64(fp, d);
    for (const float v : delta_data.values()) {
      fp = Mix64(fp, std::bit_cast<uint32_t>(v));
    }
    return fp;
  }

  // The manifest serialization body; callers hold `mu` (shared suffices).
  void SaveLocked(std::ostream& out) const {
    std::vector<uint32_t> tombs(tombstones.begin(), tombstones.end());
    std::sort(tombs.begin(), tombs.end());

    out.write(kManifestMagic, sizeof(kManifestMagic));
    WritePod(out, kManifestFormatVersion);
    WritePod(out, uint32_t{0});  // Reserved; must be zero in version 1.
    WritePod(out, static_cast<uint64_t>(next_id));
    WritePod(out, static_cast<uint64_t>(base_ids.size()));
    WritePod(out, static_cast<uint64_t>(delta_ids.size()));
    WritePod(out, static_cast<uint64_t>(tombs.size()));
    WritePodVec(out, base_ids);
    base->Save(out);  // Embedded index file, magic and all.
    WritePodVec(out, delta_ids);
    WriteDatasetBinary(delta_data, out);
    WritePodVec(out, tombs);
    WritePod(out, ManifestFingerprint(tombs));  // End marker.
    if (!out) throw IndexError("manifest save: stream write failed");
  }
};

DynamicIndex::DynamicIndex(std::unique_ptr<PersistentIndex> base,
                           const DynamicIndexConfig& cfg)
    : impl_(std::make_unique<Impl>()) {
  if (base == nullptr) {
    throw std::invalid_argument("DynamicIndex: null base index");
  }
  Impl& im = *impl_;
  im.cfg = cfg;
  im.base = std::move(base);
  im.measure = im.base->measure();
  im.num_dims = im.base->data().num_dims();
  im.seed = im.base->seed();
  im.serve_cfg.measure = im.base->measure();
  im.serve_cfg.threshold =
      cfg.threshold != 0.0 ? cfg.threshold : im.base->build_threshold();
  im.serve_cfg.exact_verification = cfg.exact_verification;
  im.serve_cfg.seed = im.base->seed();
  im.serve_cfg.bbit = im.base->bbit();
  // Pin the delta's banding shape to the base's so every segment (and
  // every future compaction) generates candidates identically.
  im.serve_cfg.banding.hashes_per_band = im.base->hashes_per_band();
  im.serve_cfg.banding.num_bands = im.base->num_bands();
  im.serve_cfg.num_threads = cfg.num_threads;
  // Same for the KLSH hash family: the delta and every compaction must
  // hash against the base's kernel and anchors, never resample from their
  // own (smaller) corpus — or segment signatures would disagree.
  if (im.measure == Measure::kKernelCosine) {
    im.serve_cfg.kernel = im.base->kernel_spec();
    im.serve_cfg.klsh = im.base->klsh_params();
    im.serve_cfg.klsh_anchors = im.base->klsh_anchors();
  }

  const uint32_t n = im.base->data().num_vectors();
  im.base_ids.resize(n);
  for (uint32_t i = 0; i < n; ++i) im.base_ids[i] = i;
  im.next_id = n;
  im.ResetDeltaAndServing();
}

DynamicIndex::~DynamicIndex() {
  try {
    WaitForCompaction();
  } catch (...) {
    // A failed background compaction left the pre-compaction state
    // intact; nothing to surface from a destructor.
  }
}

uint32_t DynamicIndex::Add(const SparseVectorView& v) {
  Impl& im = *impl_;
  uint32_t id;
  bool trigger;
  {
    std::unique_lock<std::shared_mutex> lock(im.mu);
    if (im.next_id == std::numeric_limits<uint32_t>::max()) {
      throw std::length_error("DynamicIndex: logical id space exhausted");
    }
    // Validate before logging or mutating: a record once in the WAL must
    // always replay, and a bad vector must leave the index unchanged.
    for (uint32_t i = 0; i < v.size(); ++i) {
      if (v.indices[i] >= im.num_dims) {
        throw std::invalid_argument(
            "DynamicIndex::Add: dimension " + std::to_string(v.indices[i]) +
            " out of range (num_dims " + std::to_string(im.num_dims) + ")");
      }
    }
    // Durability order: log + flush FIRST, apply second — a mutation is
    // never observable (nor acknowledged) unless it is already on disk.
    if (im.wal != nullptr) {
      const std::vector<uint8_t> rec = EncodeWalAdd(im.next_id, v);
      im.wal->AppendRecord(rec);
      im.wal->Flush(im.cfg.wal_sync);
    }
    im.ApplyAddLocked(RowEntries(v));
    id = im.next_id - 1;
    trigger = im.AutoCompactDueLocked();
  }
  if (trigger) im.ScheduleCompact();
  return id;
}

bool DynamicIndex::Remove(uint32_t id) {
  Impl& im = *impl_;
  bool trigger;
  {
    std::unique_lock<std::shared_mutex> lock(im.mu);
    if (!im.LiveLocked(id)) return false;
    if (im.wal != nullptr) {
      const std::vector<uint8_t> rec = EncodeWalRemove(id);
      im.wal->AppendRecord(rec);
      im.wal->Flush(im.cfg.wal_sync);
    }
    im.tombstones.insert(id);
    trigger = im.AutoCompactDueLocked();
  }
  if (trigger) im.ScheduleCompact();
  return true;
}

bool DynamicIndex::Contains(uint32_t id) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return im.LiveLocked(id);
}

std::vector<QueryMatch> DynamicIndex::Query(const SparseVectorView& q,
                                            QueryStats* stats) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  QueryStats base_stats, delta_stats;
  const std::vector<QueryMatch> base_matches =
      im.base_searcher->Query(q, stats != nullptr ? &base_stats : nullptr);
  const std::vector<QueryMatch> delta_matches =
      im.delta_searcher->Query(q, stats != nullptr ? &delta_stats : nullptr);
  uint64_t ghosts = 0;
  std::vector<QueryMatch> merged = im.MergeSegments(
      base_matches, delta_matches, stats != nullptr ? &ghosts : nullptr);
  if (stats != nullptr) {
    *stats = base_stats;
    stats->MergeFrom(delta_stats);  // Segment stats sum, threads_used maxes.
    stats->ghost_candidates += ghosts;
  }
  return merged;
}

std::vector<QueryMatch> DynamicIndex::QueryTopK(const SparseVectorView& q,
                                                uint32_t k,
                                                QueryStats* stats) const {
  // Merge before truncation: a tombstoned row must not displace a live
  // one from the top k.
  std::vector<QueryMatch> all = Query(q, stats);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<std::vector<QueryMatch>> DynamicIndex::QueryBatch(
    std::span<const SparseVectorView> queries, QueryStats* stats,
    uint32_t top_k) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  QueryStats base_stats, delta_stats;
  const auto base_results = im.base_searcher->QueryBatch(
      queries, stats != nullptr ? &base_stats : nullptr, /*top_k=*/0);
  const auto delta_results = im.delta_searcher->QueryBatch(
      queries, stats != nullptr ? &delta_stats : nullptr, /*top_k=*/0);
  uint64_t ghosts = 0;
  std::vector<std::vector<QueryMatch>> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results[i] = im.MergeSegments(base_results[i], delta_results[i],
                                  stats != nullptr ? &ghosts : nullptr);
    if (top_k != 0 && results[i].size() > top_k) results[i].resize(top_k);
  }
  if (stats != nullptr) {
    *stats = base_stats;
    stats->MergeFrom(delta_stats);  // Segment stats sum, threads_used maxes.
    stats->ghost_candidates += ghosts;
  }
  return results;
}

void DynamicIndex::Compact() { impl_->CompactLsm(); }

WalRecovery DynamicIndex::AttachWal(const std::string& path) {
  Impl& im = *impl_;
  WalRecovery rec;
  bool trigger;
  {
    std::unique_lock<std::shared_mutex> lock(im.mu);
    if (im.wal != nullptr) {
      throw std::logic_error("DynamicIndex: a WAL is already attached");
    }
    const WalReplayResult replay =
        ReplayWal(path, [&](std::span<const uint8_t> r) {
          im.ApplyWalRecord(r, &rec);
        });
    rec.records = replay.records;
    rec.tail_truncated = replay.tail_truncated;
    // Opening at the replayed prefix truncates any torn tail, so the
    // repaired log and the in-memory state agree from here on.
    im.wal = WalWriter::Open(path, replay.valid_bytes);
    trigger = im.AutoCompactDueLocked();
  }
  if (trigger) im.ScheduleCompact();
  return rec;
}

void DynamicIndex::WaitForCompaction() {
  Impl& im = *impl_;
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(im.worker_mu);
    t = std::move(im.worker);
  }
  if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lk(im.worker_mu);
  if (im.compact_error != nullptr) {
    std::exception_ptr err = im.compact_error;
    im.compact_error = nullptr;
    std::rethrow_exception(err);
  }
}

bool DynamicIndex::WaitForCompaction(double timeout_seconds) {
  Impl& im = *impl_;
  std::thread t;
  {
    std::unique_lock<std::mutex> lk(im.worker_mu);
    // Wait on the flag, not the thread: a wedged compaction body never
    // flips it, and this overload must come back anyway.
    if (!im.worker_cv.wait_for(
            lk, std::chrono::duration<double>(
                    timeout_seconds > 0 ? timeout_seconds : 0),
            [&] { return !im.compact_scheduled; })) {
      return false;  // Still running; the worker keeps going.
    }
    t = std::move(im.worker);
  }
  // The flag flips in the worker's final statement, so this join is
  // bounded — the thread is already past its body.
  if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lk(im.worker_mu);
  if (im.compact_error != nullptr) {
    std::exception_ptr err = im.compact_error;
    im.compact_error = nullptr;
    std::rethrow_exception(err);
  }
  return true;
}

void DynamicIndex::SetCompactHookForTest(std::function<void()> hook) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.compact_mu);
  im.compact_hook = std::move(hook);
}

void DynamicIndex::SetWalCrashAfterBytes(uint64_t total_bytes,
                                         std::function<void()> on_crash) {
  Impl& im = *impl_;
  std::unique_lock<std::shared_mutex> lock(im.mu);
  if (im.wal == nullptr) {
    throw std::logic_error(
        "DynamicIndex: fault injection needs an attached WAL");
  }
  im.wal->SetCrashAfterBytes(total_bytes, std::move(on_crash));
}

void DynamicIndex::Save(std::ostream& out) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  im.SaveLocked(out);
}

void DynamicIndex::SaveFile(const std::string& path) const {
  Impl& im = *impl_;
  // With a WAL attached, the checkpoint write and the log reset must be
  // one atomic step with respect to mutations — a mutation logged
  // between them would survive in neither — so the lock is exclusive.
  // Without one, Save stays a read and shares the lock with queries.
  std::shared_lock<std::shared_mutex> shared(im.mu, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(im.mu, std::defer_lock);
  if (im.wal != nullptr) {
    exclusive.lock();
  } else {
    shared.lock();
  }

  // Write-then-rename: the CLI's default is an in-place update of the
  // only copy, so a crash or full disk mid-write must leave the original
  // manifest intact, never a truncated one. The flush+close must be
  // checked BEFORE the rename — a failed final buffered flush would
  // otherwise still promote a truncated tmp over the original.
  const std::string tmp = path + ".tmp";
  std::ofstream f(tmp, std::ios::binary);
  if (!f) throw IndexError("manifest save: cannot open " + tmp);
  try {
    im.SaveLocked(f);
  } catch (...) {
    f.close();
    std::remove(tmp.c_str());
    throw;
  }
  f.close();
  if (f.fail() || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IndexError("manifest save: cannot finish writing " + tmp +
                     " and replace " + path);
  }
  // The checkpoint covers every logged record; start the log over. A
  // crash between the rename above and this reset is benign: replay
  // skips records the checkpoint already holds (idempotent replay).
  if (im.wal != nullptr) im.wal->Reset();
}

std::unique_ptr<DynamicIndex> DynamicIndex::Load(
    std::istream& in, const DynamicIndexConfig& cfg) {
  try {
    char magic[sizeof(kManifestMagic)];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
      throw IndexError(
          "manifest load: bad magic (not a bayeslsh dynamic-index "
          "manifest, or written on an incompatible platform)");
    }
    const auto version = ReadPod<uint32_t>(in, "manifest header: version");
    if (version != kManifestFormatVersion) {
      throw IndexError("manifest load: unsupported format version " +
                       std::to_string(version) + " (this build reads " +
                       std::to_string(kManifestFormatVersion) + ")");
    }
    const auto reserved = ReadPod<uint32_t>(in, "manifest header: reserved");
    if (reserved != 0) {
      throw IndexError(
          "manifest header: reserved field must be zero in format "
          "version 1 (got " + std::to_string(reserved) + ")");
    }
    const auto next_id = ReadPod<uint64_t>(in, "manifest header: next id");
    const auto nb = ReadPod<uint64_t>(in, "manifest header: base rows");
    const auto nd = ReadPod<uint64_t>(in, "manifest header: delta rows");
    const auto nt = ReadPod<uint64_t>(in, "manifest header: tombstones");
    if (next_id >= std::numeric_limits<uint32_t>::max() ||
        nb > next_id || nd > next_id || nb + nd > next_id ||
        nt > nb + nd) {
      throw IndexError("manifest header: implausible id counts");
    }

    std::vector<uint32_t> base_ids;
    ReadPodVec(in, &base_ids, nb, "manifest: base id map");
    for (uint64_t i = 0; i < nb; ++i) {
      if (base_ids[i] >= next_id ||
          (i > 0 && base_ids[i] <= base_ids[i - 1])) {
        throw IndexError("manifest: base id map not strictly ascending "
                         "below the next id");
      }
    }

    std::unique_ptr<PersistentIndex> base =
        PersistentIndex::Load(in, /*expect_eof=*/false);
    if (base->data().num_vectors() != nb) {
      throw IndexError("manifest: embedded base row count disagrees with "
                       "the header");
    }

    std::vector<uint32_t> delta_ids;
    ReadPodVec(in, &delta_ids, nd, "manifest: delta id map");
    for (uint64_t i = 0; i < nd; ++i) {
      if (delta_ids[i] >= next_id ||
          (i > 0 && delta_ids[i] <= delta_ids[i - 1]) ||
          (i == 0 && !base_ids.empty() && delta_ids[0] <= base_ids.back())) {
        throw IndexError("manifest: delta id map must ascend strictly "
                         "above every base id");
      }
    }

    const Dataset delta = ReadDatasetBinary(in);
    if (delta.num_vectors() != nd) {
      throw IndexError("manifest: delta row count disagrees with the "
                       "header");
    }
    if (delta.num_dims() != base->data().num_dims()) {
      throw IndexError("manifest: delta dimensionality disagrees with the "
                       "base");
    }

    std::vector<uint32_t> tombs;
    ReadPodVec(in, &tombs, nt, "manifest: tombstone list");
    for (uint64_t i = 0; i < nt; ++i) {
      if ((i > 0 && tombs[i] <= tombs[i - 1]) ||
          (!IdInSorted(base_ids, tombs[i]) &&
           !IdInSorted(delta_ids, tombs[i]))) {
        throw IndexError("manifest: tombstone list must name known ids in "
                         "strictly ascending order");
      }
    }

    std::unique_ptr<DynamicIndex> index(
        new DynamicIndex(std::move(base), cfg));
    Impl& im = *index->impl_;
    im.base_ids = std::move(base_ids);
    im.next_id = static_cast<uint32_t>(next_id);
    // Rebuild the delta's serving state: signatures and banding keys are
    // pure functions of (seed, row content), so re-inserting the rows
    // reproduces the saved segment exactly. The delta is small by
    // invariant (compaction folds it away), so this is cheap relative to
    // the base load.
    for (uint32_t r = 0; r < delta.num_vectors(); ++r) {
      im.delta_data.AppendRow(RowEntries(delta.Row(r)));
    }
    im.delta_searcher->SyncAppendedRows();
    im.delta_ids = std::move(delta_ids);
    im.tombstones.insert(tombs.begin(), tombs.end());

    const auto end_marker = ReadPod<uint64_t>(in, "manifest end marker");
    if (end_marker != im.ManifestFingerprint(tombs)) {
      throw IndexError("manifest load: end marker mismatch (truncated or "
                       "corrupt tail)");
    }
    if (in.peek() != std::istream::traits_type::eof()) {
      throw IndexError("manifest load: trailing bytes after the end "
                       "marker");
    }
    return index;
  } catch (const IndexError&) {
    throw;
  } catch (const IoError& e) {
    // Embedded section readers throw plain IoError; surface everything
    // under the one manifest-load error type.
    throw IndexError(std::string("manifest load: ") + e.what());
  }
}

std::unique_ptr<DynamicIndex> DynamicIndex::LoadFile(
    const std::string& path, const DynamicIndexConfig& cfg) {
  try {
    RequireReadableDataFile(path);
  } catch (const IoError& e) {
    throw IndexError(std::string("manifest load: ") + e.what());
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IndexError("manifest load: cannot open " + path);
  return Load(f, cfg);
}

bool DynamicIndex::SniffFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  char magic[sizeof(kManifestMagic)] = {};
  f.read(magic, sizeof(magic));
  return f && std::memcmp(magic, kManifestMagic, sizeof(magic)) == 0;
}

// The shape accessors read the cached lifetime invariants, never the
// (compaction-replaceable) base pointer — genuinely safe from any thread
// without a lock.
Dataset DynamicIndex::LiveCorpus(std::vector<uint32_t>* ids) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  DatasetBuilder builder(im.num_dims);
  if (ids != nullptr) ids->clear();
  // Base then delta is ascending logical-id order: every delta id
  // exceeds every base id by the segment invariant.
  for (uint32_t r = 0; r < im.base_ids.size(); ++r) {
    const uint32_t id = im.base_ids[r];
    if (im.tombstones.count(id) != 0) continue;
    builder.AddRow(RowEntries(im.base->data().Row(r)));
    if (ids != nullptr) ids->push_back(id);
  }
  for (uint32_t r = 0; r < im.delta_ids.size(); ++r) {
    const uint32_t id = im.delta_ids[r];
    if (im.tombstones.count(id) != 0) continue;
    builder.AddRow(RowEntries(im.delta_data.Row(r)));
    if (ids != nullptr) ids->push_back(id);
  }
  return std::move(builder).Build();
}

Measure DynamicIndex::measure() const { return impl_->measure; }

uint32_t DynamicIndex::num_dims() const { return impl_->num_dims; }

double DynamicIndex::serve_threshold() const {
  return impl_->serve_cfg.threshold;
}

uint64_t DynamicIndex::seed() const { return impl_->seed; }

uint32_t DynamicIndex::bbit() const { return impl_->serve_cfg.bbit; }

uint32_t DynamicIndex::num_bands() const {
  return impl_->serve_cfg.banding.num_bands;
}

uint32_t DynamicIndex::hashes_per_band() const {
  return impl_->serve_cfg.banding.hashes_per_band;
}

const KernelSpec& DynamicIndex::kernel_spec() const {
  return impl_->serve_cfg.kernel;
}

const KlshParams& DynamicIndex::klsh_params() const {
  return impl_->serve_cfg.klsh;
}

std::shared_ptr<const Dataset> DynamicIndex::klsh_anchors() const {
  return impl_->serve_cfg.klsh_anchors;
}

uint32_t DynamicIndex::num_base_rows() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.base_ids.size());
}

uint32_t DynamicIndex::num_delta_rows() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.delta_ids.size());
}

uint32_t DynamicIndex::num_tombstones() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.tombstones.size());
}

uint32_t DynamicIndex::num_live() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.base_ids.size() + im.delta_ids.size() -
                               im.tombstones.size());
}

uint64_t DynamicIndex::base_hash_work() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  if (im.base->bit_store() != nullptr) {
    return im.base->bit_store()->bits_computed();
  }
  if (im.base->int_store() != nullptr) {
    return im.base->int_store()->hashes_computed();
  }
  return im.base->bbit_store()->hashes_computed();
}

}  // namespace bayeslsh
