#include "core/dynamic_index.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/prng.h"
#include "vec/binary_io.h"
#include "vec/io.h"

namespace bayeslsh {

namespace {

// 8 bytes: name + "DX" (dynamic index) + format generation + the trailing
// 'E' endianness canary shared by every binary format (docs/FORMATS.md).
constexpr char kManifestMagic[8] = {'B', 'L', 'S', 'H', 'D', 'X', '1', 'E'};

// The merged-result ordering: decreasing similarity, ties by ascending
// logical id — exactly the QuerySearcher result order, so a merged answer
// is byte-for-byte what a rebuilt single-segment searcher returns.
void SortMerged(std::vector<QueryMatch>* out) {
  std::sort(out->begin(), out->end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
            });
}

std::vector<std::pair<DimId, float>> RowEntries(const SparseVectorView& v) {
  std::vector<std::pair<DimId, float>> entries;
  entries.reserve(v.size());
  for (uint32_t i = 0; i < v.size(); ++i) {
    entries.emplace_back(v.indices[i], v.values[i]);
  }
  return entries;
}

// True iff `id` occurs in the sorted vector.
bool IdInSorted(const std::vector<uint32_t>& ids, uint32_t id) {
  return std::binary_search(ids.begin(), ids.end(), id);
}

}  // namespace

struct DynamicIndex::Impl {
  DynamicIndexConfig cfg;
  QuerySearchConfig serve_cfg;  // Resolved against the base at construction.

  // Invariants of the index's whole lifetime (compaction preserves all
  // of them), cached so the lock-free accessors never dereference `base`
  // while a concurrent Compact() is replacing it.
  Measure measure = Measure::kCosine;
  uint32_t num_dims = 0;
  uint64_t seed = 0;

  // Frozen base segment: the persistent index plus a warm searcher over
  // it. base_ids maps physical base row -> logical id (strictly
  // ascending).
  std::unique_ptr<PersistentIndex> base;
  std::vector<uint32_t> base_ids;
  std::unique_ptr<QuerySearcher> base_searcher;

  // Mutable delta segment: an append-only dataset, the searcher that
  // grows with it (SyncAppendedRows), and the physical-row -> logical-id
  // map (strictly ascending, every id greater than every base id).
  Dataset delta_data;
  std::vector<uint32_t> delta_ids;
  std::unique_ptr<QuerySearcher> delta_searcher;

  // Logical ids removed but not yet compacted away.
  std::unordered_set<uint32_t> tombstones;

  // Next logical id Add() will assign; ids are never reused.
  uint32_t next_id = 0;

  // Queries shared, mutations exclusive (see the header comment).
  mutable std::shared_mutex mu;

  // (Re)creates the empty delta and both segment searchers — after
  // construction and after every compaction.
  void ResetDeltaAndServing() {
    delta_searcher.reset();
    base_searcher.reset();
    delta_data = Dataset(base->data().num_dims(), {0}, {}, {});
    base_searcher = std::make_unique<QuerySearcher>(base.get(), serve_cfg);
    // The delta serves single-threaded: results are thread-count
    // invariant by the engine's determinism guarantee, the segment is
    // small by invariant, and a second worker pool per index (torn down
    // and rebuilt inside every Compact) would be pure overhead.
    QuerySearchConfig delta_cfg = serve_cfg;
    delta_cfg.num_threads = 1;
    delta_searcher =
        std::make_unique<QuerySearcher>(&delta_data, delta_cfg);
  }

  bool LiveLocked(uint32_t id) const {
    if (tombstones.count(id) != 0) return false;
    return IdInSorted(base_ids, id) || IdInSorted(delta_ids, id);
  }

  // Maps one segment's matches to logical ids, dropping tombstones.
  void AppendLive(const std::vector<QueryMatch>& matches,
                  const std::vector<uint32_t>& ids,
                  std::vector<QueryMatch>* out) const {
    for (const QueryMatch& m : matches) {
      const uint32_t id = ids[m.id];
      if (tombstones.count(id) == 0) out->push_back({id, m.sim});
    }
  }

  std::vector<QueryMatch> MergeSegments(
      const std::vector<QueryMatch>& base_matches,
      const std::vector<QueryMatch>& delta_matches) const {
    std::vector<QueryMatch> out;
    out.reserve(base_matches.size() + delta_matches.size());
    AppendLive(base_matches, base_ids, &out);
    AppendLive(delta_matches, delta_ids, &out);
    SortMerged(&out);
    return out;
  }

  // The manifest integrity fingerprint: a Mix64 chain over the header
  // counts, every id in every map, the embedded base's own fingerprint,
  // and the delta rows' full CSR content — the end marker checked on
  // load. The delta content matters: the base protects itself with its
  // own fingerprint, and without this fold the delta dataset's values
  // would be the one section a flipped byte could corrupt silently (the
  // CSR structure checks validate shape, not weights).
  uint64_t ManifestFingerprint(
      const std::vector<uint32_t>& sorted_tombstones) const {
    uint64_t fp = Mix64(kManifestFormatVersion, next_id);
    fp = Mix64(fp, base_ids.size(), delta_ids.size());
    fp = Mix64(fp, sorted_tombstones.size(), base->Fingerprint());
    for (const uint32_t id : base_ids) fp = Mix64(fp, id);
    for (const uint32_t id : delta_ids) fp = Mix64(fp, id);
    for (const uint32_t id : sorted_tombstones) fp = Mix64(fp, id);
    fp = Mix64(fp, delta_data.num_dims(), delta_data.nnz());
    for (const uint64_t p : delta_data.indptr()) fp = Mix64(fp, p);
    for (const DimId d : delta_data.indices()) fp = Mix64(fp, d);
    for (const float v : delta_data.values()) {
      fp = Mix64(fp, std::bit_cast<uint32_t>(v));
    }
    return fp;
  }
};

DynamicIndex::DynamicIndex(std::unique_ptr<PersistentIndex> base,
                           const DynamicIndexConfig& cfg)
    : impl_(std::make_unique<Impl>()) {
  if (base == nullptr) {
    throw std::invalid_argument("DynamicIndex: null base index");
  }
  Impl& im = *impl_;
  im.cfg = cfg;
  im.base = std::move(base);
  im.measure = im.base->measure();
  im.num_dims = im.base->data().num_dims();
  im.seed = im.base->seed();
  im.serve_cfg.measure = im.base->measure();
  im.serve_cfg.threshold =
      cfg.threshold != 0.0 ? cfg.threshold : im.base->build_threshold();
  im.serve_cfg.exact_verification = cfg.exact_verification;
  im.serve_cfg.seed = im.base->seed();
  im.serve_cfg.bbit = im.base->bbit();
  // Pin the delta's banding shape to the base's so every segment (and
  // every future compaction) generates candidates identically.
  im.serve_cfg.banding.hashes_per_band = im.base->hashes_per_band();
  im.serve_cfg.banding.num_bands = im.base->num_bands();
  im.serve_cfg.num_threads = cfg.num_threads;

  const uint32_t n = im.base->data().num_vectors();
  im.base_ids.resize(n);
  for (uint32_t i = 0; i < n; ++i) im.base_ids[i] = i;
  im.next_id = n;
  im.ResetDeltaAndServing();
}

DynamicIndex::~DynamicIndex() = default;

uint32_t DynamicIndex::Add(const SparseVectorView& v) {
  Impl& im = *impl_;
  std::unique_lock<std::shared_mutex> lock(im.mu);
  if (im.next_id == std::numeric_limits<uint32_t>::max()) {
    throw std::length_error("DynamicIndex: logical id space exhausted");
  }
  // AppendRow validates dimensions before mutating, so a bad vector
  // leaves the index unchanged.
  im.delta_data.AppendRow(RowEntries(v));
  im.delta_searcher->SyncAppendedRows();
  const uint32_t id = im.next_id++;
  im.delta_ids.push_back(id);
  return id;
}

bool DynamicIndex::Remove(uint32_t id) {
  Impl& im = *impl_;
  std::unique_lock<std::shared_mutex> lock(im.mu);
  if (!im.LiveLocked(id)) return false;
  im.tombstones.insert(id);
  return true;
}

bool DynamicIndex::Contains(uint32_t id) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return im.LiveLocked(id);
}

std::vector<QueryMatch> DynamicIndex::Query(const SparseVectorView& q,
                                            QueryStats* stats) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  QueryStats base_stats, delta_stats;
  const std::vector<QueryMatch> base_matches =
      im.base_searcher->Query(q, stats != nullptr ? &base_stats : nullptr);
  const std::vector<QueryMatch> delta_matches =
      im.delta_searcher->Query(q, stats != nullptr ? &delta_stats : nullptr);
  if (stats != nullptr) {
    *stats = base_stats;
    stats->MergeFrom(delta_stats);  // Segment stats sum, threads_used maxes.
  }
  return im.MergeSegments(base_matches, delta_matches);
}

std::vector<QueryMatch> DynamicIndex::QueryTopK(const SparseVectorView& q,
                                                uint32_t k,
                                                QueryStats* stats) const {
  // Merge before truncation: a tombstoned row must not displace a live
  // one from the top k.
  std::vector<QueryMatch> all = Query(q, stats);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<std::vector<QueryMatch>> DynamicIndex::QueryBatch(
    std::span<const SparseVectorView> queries, QueryStats* stats,
    uint32_t top_k) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  QueryStats base_stats, delta_stats;
  const auto base_results = im.base_searcher->QueryBatch(
      queries, stats != nullptr ? &base_stats : nullptr, /*top_k=*/0);
  const auto delta_results = im.delta_searcher->QueryBatch(
      queries, stats != nullptr ? &delta_stats : nullptr, /*top_k=*/0);
  if (stats != nullptr) {
    *stats = base_stats;
    stats->MergeFrom(delta_stats);  // Segment stats sum, threads_used maxes.
  }
  std::vector<std::vector<QueryMatch>> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results[i] = im.MergeSegments(base_results[i], delta_results[i]);
    if (top_k != 0 && results[i].size() > top_k) results[i].resize(top_k);
  }
  return results;
}

void DynamicIndex::Compact() {
  Impl& im = *impl_;
  std::unique_lock<std::shared_mutex> lock(im.mu);
  // Nothing to fold in: keep the base untouched, so double-compaction is
  // an exact no-op (idempotence, asserted by tests).
  if (im.delta_ids.empty() && im.tombstones.empty()) return;

  DatasetBuilder builder(im.base->data().num_dims());
  std::vector<uint32_t> ids;
  ids.reserve(im.base_ids.size() + im.delta_ids.size());
  const auto append_live = [&](const Dataset& d,
                               const std::vector<uint32_t>& idmap) {
    for (uint32_t r = 0; r < d.num_vectors(); ++r) {
      const uint32_t id = idmap[r];
      if (im.tombstones.count(id) != 0) continue;
      builder.AddRow(RowEntries(d.Row(r)));
      ids.push_back(id);
    }
  };
  // Base then delta visits the live rows in ascending logical-id order
  // (base ids are ascending and every delta id exceeds them), so the new
  // base's physical order is the logical order — what a from-scratch
  // build over the live corpus would index.
  append_live(im.base->data(), im.base_ids);
  append_live(im.delta_data, im.delta_ids);

  IndexBuildConfig build_cfg;
  build_cfg.measure = im.base->measure();
  build_cfg.threshold = im.base->build_threshold();
  build_cfg.banding.hashes_per_band = im.base->hashes_per_band();
  build_cfg.banding.num_bands = im.base->num_bands();
  build_cfg.seed = im.base->seed();
  build_cfg.bbit = im.base->bbit();
  build_cfg.num_threads = im.cfg.num_threads;
  std::unique_ptr<PersistentIndex> new_base =
      PersistentIndex::Build(std::move(builder).Build(), build_cfg);

  im.base_searcher.reset();
  im.delta_searcher.reset();
  im.base = std::move(new_base);
  im.base_ids = std::move(ids);
  im.delta_ids.clear();
  im.tombstones.clear();
  im.ResetDeltaAndServing();
}

void DynamicIndex::Save(std::ostream& out) const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  std::vector<uint32_t> tombs(im.tombstones.begin(), im.tombstones.end());
  std::sort(tombs.begin(), tombs.end());

  out.write(kManifestMagic, sizeof(kManifestMagic));
  WritePod(out, kManifestFormatVersion);
  WritePod(out, uint32_t{0});  // Reserved; must be zero in version 1.
  WritePod(out, static_cast<uint64_t>(im.next_id));
  WritePod(out, static_cast<uint64_t>(im.base_ids.size()));
  WritePod(out, static_cast<uint64_t>(im.delta_ids.size()));
  WritePod(out, static_cast<uint64_t>(tombs.size()));
  WritePodVec(out, im.base_ids);
  im.base->Save(out);  // Embedded index file, magic and all.
  WritePodVec(out, im.delta_ids);
  WriteDatasetBinary(im.delta_data, out);
  WritePodVec(out, tombs);
  WritePod(out, im.ManifestFingerprint(tombs));  // End marker.
  if (!out) throw IndexError("manifest save: stream write failed");
}

void DynamicIndex::SaveFile(const std::string& path) const {
  // Write-then-rename: the CLI's default is an in-place update of the
  // only copy, so a crash or full disk mid-write must leave the original
  // manifest intact, never a truncated one. The flush+close must be
  // checked BEFORE the rename — a failed final buffered flush would
  // otherwise still promote a truncated tmp over the original.
  const std::string tmp = path + ".tmp";
  std::ofstream f(tmp, std::ios::binary);
  if (!f) throw IndexError("manifest save: cannot open " + tmp);
  try {
    Save(f);
  } catch (...) {
    f.close();
    std::remove(tmp.c_str());
    throw;
  }
  f.close();
  if (f.fail() || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IndexError("manifest save: cannot finish writing " + tmp +
                     " and replace " + path);
  }
}

std::unique_ptr<DynamicIndex> DynamicIndex::Load(
    std::istream& in, const DynamicIndexConfig& cfg) {
  try {
    char magic[sizeof(kManifestMagic)];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
      throw IndexError(
          "manifest load: bad magic (not a bayeslsh dynamic-index "
          "manifest, or written on an incompatible platform)");
    }
    const auto version = ReadPod<uint32_t>(in, "manifest header: version");
    if (version != kManifestFormatVersion) {
      throw IndexError("manifest load: unsupported format version " +
                       std::to_string(version) + " (this build reads " +
                       std::to_string(kManifestFormatVersion) + ")");
    }
    const auto reserved = ReadPod<uint32_t>(in, "manifest header: reserved");
    if (reserved != 0) {
      throw IndexError(
          "manifest header: reserved field must be zero in format "
          "version 1 (got " + std::to_string(reserved) + ")");
    }
    const auto next_id = ReadPod<uint64_t>(in, "manifest header: next id");
    const auto nb = ReadPod<uint64_t>(in, "manifest header: base rows");
    const auto nd = ReadPod<uint64_t>(in, "manifest header: delta rows");
    const auto nt = ReadPod<uint64_t>(in, "manifest header: tombstones");
    if (next_id >= std::numeric_limits<uint32_t>::max() ||
        nb > next_id || nd > next_id || nb + nd > next_id ||
        nt > nb + nd) {
      throw IndexError("manifest header: implausible id counts");
    }

    std::vector<uint32_t> base_ids;
    ReadPodVec(in, &base_ids, nb, "manifest: base id map");
    for (uint64_t i = 0; i < nb; ++i) {
      if (base_ids[i] >= next_id ||
          (i > 0 && base_ids[i] <= base_ids[i - 1])) {
        throw IndexError("manifest: base id map not strictly ascending "
                         "below the next id");
      }
    }

    std::unique_ptr<PersistentIndex> base =
        PersistentIndex::Load(in, /*expect_eof=*/false);
    if (base->data().num_vectors() != nb) {
      throw IndexError("manifest: embedded base row count disagrees with "
                       "the header");
    }

    std::vector<uint32_t> delta_ids;
    ReadPodVec(in, &delta_ids, nd, "manifest: delta id map");
    for (uint64_t i = 0; i < nd; ++i) {
      if (delta_ids[i] >= next_id ||
          (i > 0 && delta_ids[i] <= delta_ids[i - 1]) ||
          (i == 0 && !base_ids.empty() && delta_ids[0] <= base_ids.back())) {
        throw IndexError("manifest: delta id map must ascend strictly "
                         "above every base id");
      }
    }

    const Dataset delta = ReadDatasetBinary(in);
    if (delta.num_vectors() != nd) {
      throw IndexError("manifest: delta row count disagrees with the "
                       "header");
    }
    if (delta.num_dims() != base->data().num_dims()) {
      throw IndexError("manifest: delta dimensionality disagrees with the "
                       "base");
    }

    std::vector<uint32_t> tombs;
    ReadPodVec(in, &tombs, nt, "manifest: tombstone list");
    for (uint64_t i = 0; i < nt; ++i) {
      if ((i > 0 && tombs[i] <= tombs[i - 1]) ||
          (!IdInSorted(base_ids, tombs[i]) &&
           !IdInSorted(delta_ids, tombs[i]))) {
        throw IndexError("manifest: tombstone list must name known ids in "
                         "strictly ascending order");
      }
    }

    std::unique_ptr<DynamicIndex> index(
        new DynamicIndex(std::move(base), cfg));
    Impl& im = *index->impl_;
    im.base_ids = std::move(base_ids);
    im.next_id = static_cast<uint32_t>(next_id);
    // Rebuild the delta's serving state: signatures and banding keys are
    // pure functions of (seed, row content), so re-inserting the rows
    // reproduces the saved segment exactly. The delta is small by
    // invariant (compaction folds it away), so this is cheap relative to
    // the base load.
    for (uint32_t r = 0; r < delta.num_vectors(); ++r) {
      im.delta_data.AppendRow(RowEntries(delta.Row(r)));
    }
    im.delta_searcher->SyncAppendedRows();
    im.delta_ids = std::move(delta_ids);
    im.tombstones.insert(tombs.begin(), tombs.end());

    const auto end_marker = ReadPod<uint64_t>(in, "manifest end marker");
    if (end_marker != im.ManifestFingerprint(tombs)) {
      throw IndexError("manifest load: end marker mismatch (truncated or "
                       "corrupt tail)");
    }
    if (in.peek() != std::istream::traits_type::eof()) {
      throw IndexError("manifest load: trailing bytes after the end "
                       "marker");
    }
    return index;
  } catch (const IndexError&) {
    throw;
  } catch (const IoError& e) {
    // Embedded section readers throw plain IoError; surface everything
    // under the one manifest-load error type.
    throw IndexError(std::string("manifest load: ") + e.what());
  }
}

std::unique_ptr<DynamicIndex> DynamicIndex::LoadFile(
    const std::string& path, const DynamicIndexConfig& cfg) {
  try {
    RequireReadableDataFile(path);
  } catch (const IoError& e) {
    throw IndexError(std::string("manifest load: ") + e.what());
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IndexError("manifest load: cannot open " + path);
  return Load(f, cfg);
}

bool DynamicIndex::SniffFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  char magic[sizeof(kManifestMagic)] = {};
  f.read(magic, sizeof(magic));
  return f && std::memcmp(magic, kManifestMagic, sizeof(magic)) == 0;
}

// The shape accessors read the cached lifetime invariants, never the
// (Compact-replaceable) base pointer — genuinely safe from any thread
// without a lock.
Measure DynamicIndex::measure() const { return impl_->measure; }

uint32_t DynamicIndex::num_dims() const { return impl_->num_dims; }

double DynamicIndex::serve_threshold() const {
  return impl_->serve_cfg.threshold;
}

uint64_t DynamicIndex::seed() const { return impl_->seed; }

uint32_t DynamicIndex::num_base_rows() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.base_ids.size());
}

uint32_t DynamicIndex::num_delta_rows() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.delta_ids.size());
}

uint32_t DynamicIndex::num_tombstones() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.tombstones.size());
}

uint32_t DynamicIndex::num_live() const {
  const Impl& im = *impl_;
  std::shared_lock<std::shared_mutex> lock(im.mu);
  return static_cast<uint32_t>(im.base_ids.size() + im.delta_ids.size() -
                               im.tombstones.size());
}

}  // namespace bayeslsh
