// The two inference-avoidance optimizations of paper §4.3.
//
//  1. Pre-computed minimum matches. For every hash count n the engine will
//     visit (multiples of the round size k), minMatches(n) is the smallest
//     match count m with Pr[S ≥ t | M(m, n)] ≥ ε. Since that probability is
//     monotone in m, the prune test on line 10 of Algorithm 1 becomes a
//     single integer comparison, with minMatches found once by binary
//     search.
//
//  2. Concentration cache. Whether the estimate after (m, n) is
//     sufficiently concentrated — and what the estimate is — depends only
//     on (m, n), so results are memoized. Only m ≥ minMatches(n) can reach
//     the concentration test, keeping the cache small.

#ifndef BAYESLSH_CORE_INFERENCE_CACHE_H_
#define BAYESLSH_CORE_INFERENCE_CACHE_H_

#include <cstdint>
#include <vector>

#include "core/bbit_posterior.h"
#include "core/cosine_posterior.h"
#include "core/jaccard_posterior.h"

namespace bayeslsh {

struct InferenceCacheStats {
  uint64_t concentration_hits = 0;
  uint64_t concentration_misses = 0;
};

// Model must satisfy the PosteriorModel concept (ProbAboveThreshold /
// Estimate / Concentration); see core/bayes_lsh.h.
template <typename Model>
class InferenceCache {
 public:
  // Rounds visit n = k, 2k, ..., max_hashes.
  InferenceCache(const Model* model, uint32_t hashes_per_round,
                 uint32_t max_hashes, double epsilon, double delta,
                 double gamma);

  // Smallest m with Pr[S >= t | M(m, n)] >= epsilon, or n + 1 if no m <= n
  // qualifies. n must be one of the round sizes.
  uint32_t MinMatches(uint32_t n) const {
    return min_matches_[RoundIndex(n)];
  }

  struct EstimateResult {
    bool concentrated;
    float estimate;
  };

  // Memoized concentration test + MAP estimate at (m, n).
  EstimateResult EstimateAt(uint32_t m, uint32_t n);

  // Batched EstimateAt: evaluates `count` match counts, all at the same
  // hash depth n, in one pass over the round's memo arrays (one round
  // lookup instead of `count`). Exactly equivalent to calling EstimateAt
  // serially for each ms[i] in order — same cached values, same
  // hit/miss stats — which is what tests/batched_posterior_test.cc
  // asserts end to end.
  void EstimateAtBatch(const uint32_t* ms, uint32_t count, uint32_t n,
                       EstimateResult* out);

  const InferenceCacheStats& stats() const { return stats_; }
  uint32_t hashes_per_round() const { return k_; }
  uint32_t max_hashes() const { return max_hashes_; }

 private:
  uint32_t RoundIndex(uint32_t n) const;

  const Model* model_;
  uint32_t k_;
  uint32_t max_hashes_;
  double epsilon_;
  double delta_;
  double gamma_;

  std::vector<uint32_t> min_matches_;  // By round index.
  // state: -1 unknown, 0 not concentrated, 1 concentrated. Indexed
  // [round][m].
  std::vector<std::vector<int8_t>> state_;
  std::vector<std::vector<float>> estimate_;
  InferenceCacheStats stats_;
};

extern template class InferenceCache<JaccardPosterior>;
extern template class InferenceCache<CosinePosterior>;
extern template class InferenceCache<BbitMinwisePosterior>;

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_INFERENCE_CACHE_H_
