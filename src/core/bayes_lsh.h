// BayesLSH and BayesLSH-Lite (paper Algorithms 1 and 2): candidate pruning
// and similarity estimation by incremental Bayesian inference over LSH
// hash-match counts.
//
// For each candidate pair, hashes are compared k at a time. After each round
// (m matches out of n compared):
//
//   * prune  if Pr[S >= t | M(m, n)] < ε            (early pruning),
//   * accept if Pr[|S − Ŝ| < δ | M(m, n)] >= 1 − γ  (BayesLSH: output Ŝ),
//   * otherwise continue with k more hashes.
//
// BayesLSH-Lite replaces the concentration test with a fixed budget of h
// hashes used only for pruning; survivors get an exact similarity
// computation and an exact threshold filter.
//
// Both engines are generic over a PosteriorModel (JaccardPosterior,
// CosinePosterior — anything exposing ProbAboveThreshold / Estimate /
// Concentration) and a signature Store exposing
// MatchCount(a, b, from, to). This is the paper's portability claim in
// code: a new LSH family only needs a new model class.

#ifndef BAYESLSH_CORE_BAYES_LSH_H_
#define BAYESLSH_CORE_BAYES_LSH_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/bbit_posterior.h"
#include "core/cosine_posterior.h"
#include "core/inference_cache.h"
#include "core/jaccard_posterior.h"
#include "lsh/bbit_minwise.h"
#include "lsh/signature_store.h"
#include "sim/brute_force.h"

namespace bayeslsh {

struct BayesLshParams {
  double epsilon = 0.03;  // Recall parameter ε.
  double delta = 0.05;    // Accuracy half-width δ.
  double gamma = 0.03;    // Accuracy failure probability γ.

  // Hashes compared per round (k). Must divide max_hashes.
  uint32_t hashes_per_round = 32;

  // Hash budget per pair. A pair still unresolved here is accepted with its
  // current estimate ("forced accept") — counted in VerifyStats; essentially
  // never happens at the paper's parameter settings.
  uint32_t max_hashes = 4096;
};

struct VerifyStats {
  uint64_t pairs_in = 0;
  uint64_t accepted = 0;
  uint64_t pruned = 0;
  uint64_t forced_accepts = 0;
  uint64_t exact_computed = 0;  // BayesLSH-Lite only.
  uint64_t hashes_compared = 0;
  // surviving_after_round[r] = candidates not yet pruned after r rounds
  // (r = 0 is the input size). Accepted pairs keep counting as survivors —
  // this is exactly the Fig. 4 curve.
  std::vector<uint64_t> surviving_after_round;
  InferenceCacheStats cache;
};

// BayesLSH (Algorithm 1): returns surviving pairs with posterior-mode
// similarity estimates. Note the output can legitimately contain pairs whose
// estimate is slightly below the model threshold: the paper's guarantee 1
// keeps every pair whose posterior probability of being a true positive
// exceeds ε.
template <typename Model, typename Store>
std::vector<ScoredPair> BayesLshVerify(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    const BayesLshParams& params, VerifyStats* stats = nullptr);

// BayesLSH-Lite (Algorithm 2): prunes with at most `max_prune_hashes`
// hashes, then verifies survivors with `exact_sim` and keeps those with
// exact similarity >= threshold.
template <typename Model, typename Store>
std::vector<ScoredPair> BayesLshLiteVerify(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t max_prune_hashes,
    const std::function<double(uint32_t, uint32_t)>& exact_sim,
    double threshold, const BayesLshParams& params,
    VerifyStats* stats = nullptr);

extern template std::vector<ScoredPair>
BayesLshVerify<JaccardPosterior, IntSignatureStore>(
    const JaccardPosterior&, IntSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, const BayesLshParams&,
    VerifyStats*);
extern template std::vector<ScoredPair>
BayesLshVerify<CosinePosterior, BitSignatureStore>(
    const CosinePosterior&, BitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, const BayesLshParams&,
    VerifyStats*);
extern template std::vector<ScoredPair>
BayesLshLiteVerify<JaccardPosterior, IntSignatureStore>(
    const JaccardPosterior&, IntSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, uint32_t,
    const std::function<double(uint32_t, uint32_t)>&, double,
    const BayesLshParams&, VerifyStats*);
extern template std::vector<ScoredPair>
BayesLshLiteVerify<CosinePosterior, BitSignatureStore>(
    const CosinePosterior&, BitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, uint32_t,
    const std::function<double(uint32_t, uint32_t)>&, double,
    const BayesLshParams&, VerifyStats*);
extern template std::vector<ScoredPair>
BayesLshVerify<BbitMinwisePosterior, BbitSignatureStore>(
    const BbitMinwisePosterior&, BbitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, const BayesLshParams&,
    VerifyStats*);
extern template std::vector<ScoredPair>
BayesLshLiteVerify<BbitMinwisePosterior, BbitSignatureStore>(
    const BbitMinwisePosterior&, BbitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, uint32_t,
    const std::function<double(uint32_t, uint32_t)>&, double,
    const BayesLshParams&, VerifyStats*);

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_BAYES_LSH_H_
