// Bayesian posterior model for Jaccard similarity (paper §4.1).
//
// Minwise hashes collide with probability exactly equal to the Jaccard
// similarity S, so observing m matches out of n hashes gives a binomial
// likelihood. With a conjugate Beta(α, β) prior,
//
//     p(S | M(m, n)) = Beta(m + α, n − m + β)
//
// and the three inference primitives (Eqns 3, 4, 6) have closed forms in
// the regularized incomplete beta function:
//
//     Pr[S ≥ t | M]            = 1 − I_t(m+α, n−m+β)
//     Ŝ (posterior mode)       = (m+α−1) / (n+α+β−2)
//     Pr[|S − Ŝ| < δ | M]      = I_{Ŝ+δ}(·) − I_{Ŝ−δ}(·)
//
// (The paper prints the mode denominator as n+α+β−1; the mode of
// Beta(a, b) is (a−1)/(a+b−2), giving n+α+β−2 — we implement the correct
// form. For α = β = 1 both agree to O(1/n).)
//
// This class satisfies the PosteriorModel concept consumed by the BayesLSH
// engine (see core/bayes_lsh.h).

#ifndef BAYESLSH_CORE_JACCARD_POSTERIOR_H_
#define BAYESLSH_CORE_JACCARD_POSTERIOR_H_

#include "stats/beta_distribution.h"

namespace bayeslsh {

class JaccardPosterior {
 public:
  // threshold in (0, 1); prior defaults to uniform Beta(1, 1).
  JaccardPosterior(double threshold,
                   BetaDistribution prior = BetaDistribution(1.0, 1.0));

  double threshold() const { return threshold_; }
  const BetaDistribution& prior() const { return prior_; }

  // Pr[S >= threshold | m of n hashes matched]. Monotone non-decreasing in
  // m for fixed n (the inference cache's binary search relies on this).
  double ProbAboveThreshold(int m, int n) const;

  // Maximum-a-posteriori similarity estimate.
  double Estimate(int m, int n) const;

  // Pr[|S - Estimate(m, n)| < delta | m of n matched].
  double Concentration(int m, int n, double delta) const;

 private:
  double threshold_;
  BetaDistribution prior_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_JACCARD_POSTERIOR_H_
