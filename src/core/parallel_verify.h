// Sharded candidate verification: the parallel drivers for the BayesLSH /
// BayesLSH-Lite engines of core/bayes_lsh.h.
//
// Strategy (docs/ARCHITECTURE.md, "Concurrency model"):
//
//   1. Prefetch: every row appearing in the candidate list is grown to the
//      prefetch horizon (one signature chunk — enough for the first
//      rounds, where the vast majority of candidates die), in parallel
//      over disjoint row ranges.
//   2. Shard: the candidate list is statically partitioned into one
//      contiguous shard per worker. Each worker owns a private
//      InferenceCache (memoization is per-shard) and a private overflow
//      store for the rare pairs that outlive the horizon, and runs the
//      same per-pair loop as the sequential engine.
//   3. Merge: per-shard outputs are concatenated in shard order — which
//      *is* candidate order, since shards are contiguous ranges of the
//      input — and per-shard stats are summed. Overflow hashing work is
//      folded into the shared store's tally.
//
// Results are bit-identical to the sequential engines for any thread
// count: hash values are pure functions of (hasher, row, chunk), each
// pair's verdict depends only on its own match counts, and the merge
// preserves input order. The only quantities that legitimately vary with
// the thread count are cache hit/miss counters and the hashing tally's
// overflow component (bounded by cross-shard duplication of overflow
// rows).

#ifndef BAYESLSH_CORE_PARALLEL_VERIFY_H_
#define BAYESLSH_CORE_PARALLEL_VERIFY_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/bayes_lsh_impl.h"

namespace bayeslsh {

// Below this many candidates per worker, sharding costs more than it saves
// and the sequential engine is used directly.
inline constexpr uint64_t kMinPairsPerShard = 64;

namespace internal {

// Smallest chunk-aligned hash count covering one verification round.
template <typename Store>
uint32_t PrefetchHorizon(uint32_t hashes_per_round) {
  const uint32_t chunk = Store::kChunkHashes;
  return (hashes_per_round + chunk - 1) / chunk * chunk;
}

// Store-generic adapters over the bit/int method names.
inline uint64_t EnsureUncounted(BitSignatureStore* s, uint32_t row,
                                uint32_t n) {
  return s->EnsureBitsUncounted(row, n);
}
inline uint64_t EnsureUncounted(IntSignatureStore* s, uint32_t row,
                                uint32_t n) {
  return s->EnsureHashesUncounted(row, n);
}
inline void AddComputed(BitSignatureStore* s, uint64_t n) {
  s->AddBitsComputed(n);
}
inline void AddComputed(IntSignatureStore* s, uint64_t n) {
  s->AddHashesComputed(n);
}

// Grows every row referenced by `pairs` to `horizon` hashes, sharded over
// the distinct-row list. Returns the total hashing work done (the caller
// folds it into the store's tally).
template <typename Store>
uint64_t PrefetchPairRows(
    Store* store, const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t horizon, ThreadPool* pool) {
  std::vector<uint32_t> rows;
  rows.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) {
    rows.push_back(a);
    rows.push_back(b);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return ParallelReduce(
      pool, rows.size(), uint64_t{0},
      [&](uint32_t, uint64_t b, uint64_t e) {
        uint64_t work = 0;
        for (uint64_t i = b; i < e; ++i) {
          work += EnsureUncounted(store, rows[i], horizon);
        }
        return work;
      },
      [](uint64_t x, uint64_t y) { return x + y; });
}

// Sums `from` into `into` (surviving_after_round element-wise; `from` may
// be empty for shards that received no pairs).
inline void MergeVerifyStats(VerifyStats* into, const VerifyStats& from) {
  into->accepted += from.accepted;
  into->pruned += from.pruned;
  into->forced_accepts += from.forced_accepts;
  into->exact_computed += from.exact_computed;
  into->hashes_compared += from.hashes_compared;
  for (size_t r = 0; r < from.surviving_after_round.size(); ++r) {
    if (r >= into->surviving_after_round.size()) {
      into->surviving_after_round.resize(r + 1, 0);
    }
    into->surviving_after_round[r] += from.surviving_after_round[r];
  }
  into->cache.concentration_hits += from.cache.concentration_hits;
  into->cache.concentration_misses += from.cache.concentration_misses;
}

// Shared prefetch/shard/merge scaffolding of the two parallel drivers
// below. `run_range(cache, match, begin, end, &out, &stats)` runs the
// engine-specific per-pair loop over one shard; everything else — the
// prefetch, per-shard cache + overflow construction, and the
// order-preserving merge — is engine-independent.
template <typename Model, typename Store, typename RangeFn>
std::vector<ScoredPair> ShardedVerifyDriver(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t cache_budget, const BayesLshParams& params, ThreadPool* pool,
    VerifyStats* stats, const RangeFn& run_range) {
  assert(params.hashes_per_round > 0 &&
         cache_budget % params.hashes_per_round == 0);
  const uint32_t rounds = cache_budget / params.hashes_per_round;

  const uint64_t prefetched = PrefetchPairRows(
      store, pairs, PrefetchHorizon<Store>(params.hashes_per_round), pool);
  AddComputed(store, prefetched);

  const uint32_t num_shards = pool->num_threads();
  struct Shard {
    std::vector<ScoredPair> out;
    VerifyStats stats;
    uint64_t overflow_work = 0;
  };
  std::vector<Shard> shards(num_shards);
  pool->RunShards(pairs.size(), [&](uint32_t s, uint64_t begin,
                                    uint64_t end) {
    Shard& shard = shards[s];
    shard.stats.surviving_after_round.assign(rounds + 1, 0);
    InferenceCache<Model> cache(&model, params.hashes_per_round,
                                cache_budget, params.epsilon, params.delta,
                                params.gamma);
    typename Store::OverflowShard overflow(store);
    run_range(
        cache,
        [&overflow](uint32_t a, uint32_t b, uint32_t from, uint32_t to) {
          return overflow.MatchCount(a, b, from, to);
        },
        begin, end, &shard.out, &shard.stats);
    shard.stats.cache = cache.stats();
    shard.overflow_work = overflow.computed();
  });

  std::vector<ScoredPair> out;
  VerifyStats merged;
  merged.pairs_in = pairs.size();
  merged.surviving_after_round.assign(rounds + 1, 0);
  uint64_t overflow_total = 0;
  for (Shard& shard : shards) {
    out.insert(out.end(), shard.out.begin(), shard.out.end());
    MergeVerifyStats(&merged, shard.stats);
    overflow_total += shard.overflow_work;
  }
  AddComputed(store, overflow_total);
  if (stats != nullptr) *stats = merged;
  return out;
}

}  // namespace internal

// BayesLSH (Algorithm 1), sharded across `pool`. Falls back to the
// sequential BayesLshVerify when the pool is null/single-threaded or the
// candidate list is too small to shard profitably. Output is identical to
// the sequential engine (same pairs, same estimates, same order).
template <typename Model, typename Store>
std::vector<ScoredPair> BayesLshVerifyParallel(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    const BayesLshParams& params, ThreadPool* pool,
    VerifyStats* stats = nullptr) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      pairs.size() < kMinPairsPerShard * pool->num_threads()) {
    return BayesLshVerify(model, store, pairs, params, stats);
  }
  return internal::ShardedVerifyDriver(
      model, store, pairs, params.max_hashes, params, pool, stats,
      [&](InferenceCache<Model>& cache, const auto& match, uint64_t begin,
          uint64_t end, std::vector<ScoredPair>* out, VerifyStats* st) {
        internal::BayesVerifyPairRange(model, cache, match, pairs, begin,
                                       end, out, st);
      });
}

// BayesLSH-Lite (Algorithm 2), sharded across `pool`. exact_sim must be
// safe to call concurrently (it only reads the dataset).
template <typename Model, typename Store, typename ExactFn>
std::vector<ScoredPair> BayesLshLiteVerifyParallel(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t max_prune_hashes, const ExactFn& exact_sim, double threshold,
    const BayesLshParams& params, ThreadPool* pool,
    VerifyStats* stats = nullptr) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      pairs.size() < kMinPairsPerShard * pool->num_threads()) {
    return BayesLshLiteVerify(model, store, pairs, max_prune_hashes,
                              exact_sim, threshold, params, stats);
  }
  return internal::ShardedVerifyDriver(
      model, store, pairs, max_prune_hashes, params, pool, stats,
      [&](InferenceCache<Model>& cache, const auto& match, uint64_t begin,
          uint64_t end, std::vector<ScoredPair>* out, VerifyStats* st) {
        internal::LiteVerifyPairRange(cache, match, exact_sim, threshold,
                                      pairs, begin, end, out, st);
      });
}

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_PARALLEL_VERIFY_H_
