// Query-mode similarity search: the general problem of paper §1 ("given a
// query object q, retrieve all objects from D with s(x, q) > t"), as
// opposed to the all-pairs self-join the benchmarks focus on.
//
// An index is built once over the collection (LSH banding buckets plus the
// lazy signature store); each query is then hashed, probed against the
// buckets, and its candidates are verified with BayesLSH — so the paper's
// pruning machinery amortizes across queries exactly as it does across
// pairs in the self-join. Supports threshold queries and top-k (top-k is
// implemented as a threshold query with a similarity-ordered cut, the
// standard adaptation).
//
// Queries do not mutate the index and may use vectors not present in the
// collection. With num_threads > 1 the searcher owns a worker pool: the
// index build shards over bands, QueryBatch() shards over queries, and a
// single large Query() shards its candidate verification over candidates
// (results identical to single-threaded for any thread count).
//
// Concurrency model (docs/ARCHITECTURE.md, "Freeze & serve"):
// Query()/QueryTopK()/QueryBatch() are safe to call concurrently from any
// number of threads, on one shared searcher. On a *frozen* searcher (see
// Freeze()) the signature store is immutable and concurrent queries read
// it lock-free — the intended serving mode. On an unfrozen searcher the
// lazy signature growth is serialized by a mutex inside the store, so
// concurrent queries are still correct but contend on growth; freeze
// before sharing a searcher across serving threads. Freeze() itself and
// the constructors are not concurrent-safe: complete them before handing
// the searcher to other threads.

#ifndef BAYESLSH_CORE_QUERY_SEARCH_H_
#define BAYESLSH_CORE_QUERY_SEARCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "candgen/lsh_banding.h"
#include "core/bayes_lsh.h"
#include "kernel/klsh.h"
#include "lsh/gaussian_source.h"
#include "lsh/signature_store.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

class PersistentIndex;  // core/index_io.h

struct QuerySearchConfig {
  Measure measure = Measure::kCosine;

  // Similarity threshold t — except for kEuclidean, where it is the query
  // *radius* (> 0, unbounded above): matches are rows within that distance
  // and their QueryMatch::sim fields hold negated distances
  // (sim/similarity.h). Euclidean serving always verifies survivors
  // exactly, so exact_verification is implied.
  double threshold = 0.7;

  // Verification: BayesLSH estimation by default; exact verification of
  // unpruned candidates (the Lite behaviour) if true.
  bool exact_verification = false;

  BayesLshParams bayes;          // hashes_per_round/max_hashes 0 = defaults.
  uint32_t lite_max_hashes = 0;  // 0 = measure default (128 / 64).
  LshBandingParams banding;      // Index shape; num_bands 0 = derive.
  uint64_t seed = 42;

  // Jaccard only: verify with b-bit minwise signatures of this width
  // (lsh/bbit_minwise.h) instead of full 32-bit hashes — 8x smaller
  // signature storage at b = 4. Candidate generation is unchanged. 0 keeps
  // full-width hashes. With b-bit signatures a single query's verification
  // runs sequentially (the index build still shards, and QueryBatch still
  // shards over queries); results remain identical for every thread count.
  uint32_t bbit = 0;

  // kKernelCosine only: the kernel the measure is defined against and the
  // KLSH hash-family shape. klsh.seed is ignored — the master `seed` above
  // derives the generation/verification hash streams, exactly as for every
  // other measure.
  KernelSpec kernel;
  KlshParams klsh;

  // kKernelCosine only: pre-sampled anchor rows shared across serving
  // components. KLSH signatures are pure functions of
  // (anchors, kernel, seed, row content), so sharded/unsharded and
  // warm/fresh identity holds exactly when every hasher sees the same
  // anchors — the sharded builder samples them once from the full corpus
  // and passes them down here. Null (the default) samples
  // min(klsh.num_anchors, collection size) rows from the collection with
  // the master seed.
  std::shared_ptr<const Dataset> klsh_anchors;

  // Posterior-evaluation block width: serial verification drives this many
  // candidates side by side, pushing every survivor's posterior update
  // through one batched inference-cache pass per round
  // (InferenceCache::EstimateAtBatch) instead of one lookup per candidate.
  // 0 selects the default block of 8; 1 restores the strictly
  // per-candidate loop. Results and QueryStats are identical for every
  // setting (asserted by tests/batched_posterior_test.cc) — this is a
  // locality knob, not a semantics knob. Within-query *sharded*
  // verification (num_threads > 1 on a large candidate list) stays
  // per-candidate; its results are identical either way.
  uint32_t posterior_batch = 0;

  // Worker threads for the index build, QueryBatch() query sharding, and
  // within-query verification sharding (0 = all hardware threads, 1 =
  // sequential). Concurrent calls are safe at any setting — see the class
  // comment.
  uint32_t num_threads = 1;
};

// One query result.
struct QueryMatch {
  uint32_t id = 0;    // Row in the indexed collection.
  double sim = 0.0;   // Estimate (or exact value with exact_verification).

  friend bool operator==(const QueryMatch&, const QueryMatch&) = default;
};

struct QueryStats {
  uint64_t candidates = 0;
  uint64_t pruned = 0;
  uint64_t hashes_compared = 0;

  // Matches that survived verification but were subtracted because their
  // logical id is tombstoned (core/dynamic_index.h) — the LSM read
  // amplification made visible: work spent verifying rows that can never
  // be served, reclaimed by Compact(). Always 0 for a plain
  // QuerySearcher, which has no notion of removal.
  uint64_t ghost_candidates = 0;

  // Sharded-serving robustness counters (core/sharded_index.h). A plain
  // QuerySearcher / DynamicIndex never sets these; ShardedIndex adds, per
  // fan-out call: shards_total += K, shards_answered += the shards whose
  // sub-results made it into the merge, deadline_expired += 1 when the
  // query's deadline cut the fan-out short (a *partial* answer), and the
  // serve front-end adds rejected_overload += 1 per admission rejection.
  // shards_answered < shards_total is the degradation signal: the result
  // is exact over the answered shards and silent about the rest.
  uint64_t shards_total = 0;
  uint64_t shards_answered = 0;
  uint64_t deadline_expired = 0;
  uint64_t rejected_overload = 0;

  // Worker threads the call *actually* used — not the configured count.
  // 1 whenever verification ran serially: a single-thread searcher, a
  // candidate list too small to shard, b-bit verification, or a Query()
  // that found the worker pool busy (the try-lock fallback) all report 1
  // even when num_threads asked for more. Merging two stats takes the
  // max, so an aggregate answers "what was the widest parallelism any
  // part of this serve reached".
  uint32_t threads_used = 0;

  // Folds another accumulator into this one: counters add, threads_used
  // takes the max — the one merge rule, shared by QuerySearcher's batch
  // aggregation and DynamicIndex's segment aggregation.
  void MergeFrom(const QueryStats& other) {
    candidates += other.candidates;
    pruned += other.pruned;
    hashes_compared += other.hashes_compared;
    ghost_candidates += other.ghost_candidates;
    shards_total += other.shards_total;
    shards_answered += other.shards_answered;
    deadline_expired += other.deadline_expired;
    rejected_overload += other.rejected_overload;
    threads_used = std::max(threads_used, other.threads_used);
  }
};

// Threshold / top-k search over a fixed collection.
//
// The collection must follow the measure conventions of sim/similarity.h
// (kCosine: L2-normalized rows; kJaccard/kBinaryCosine: binary rows) and
// must outlive the searcher.
class QuerySearcher {
 public:
  QuerySearcher(const Dataset* data, const QuerySearchConfig& config);

  // Warm start: serves from a persistent index (core/index_io.h) instead
  // of building banding buckets and hashing signatures from scratch — the
  // collection is the index's dataset. The index must outlive the
  // searcher. config must agree with the index on measure, seed, bbit and
  // (when set explicitly) banding shape — IndexError otherwise; the
  // threshold may differ, but thresholds below the index's build threshold
  // raise the banding false-negative rate beyond the configured ε. Query
  // results are pair-for-pair identical to a fresh build with the same
  // config (signatures are pure functions of (seed, row)).
  QuerySearcher(const PersistentIndex* index,
                const QuerySearchConfig& config);

  ~QuerySearcher();

  QuerySearcher(const QuerySearcher&) = delete;
  QuerySearcher& operator=(const QuerySearcher&) = delete;

  // All collection rows x with s(x, q) >= threshold (subject to the
  // BayesLSH guarantees), sorted by decreasing similarity. Safe to call
  // concurrently (see the class comment); on a frozen searcher the call
  // performs zero signature-store mutations.
  std::vector<QueryMatch> Query(const SparseVectorView& q,
                                QueryStats* stats = nullptr) const;

  // The k most similar rows among those reaching the threshold; ties by id.
  std::vector<QueryMatch> QueryTopK(const SparseVectorView& q, uint32_t k,
                                    QueryStats* stats = nullptr) const;

  // Batched multi-client serving: answers queries[i] into slot i of the
  // result, sharding over *queries* (one pool shard, inference cache and
  // stats accumulator per worker, merged in query order). Each query runs
  // the same per-candidate loop as Query(), so results are pair-for-pair
  // identical to a serial Query() loop, for any thread count. top_k != 0
  // truncates each query's matches as QueryTopK would. *stats, when
  // given, receives the per-query stats summed in query order — exactly
  // the totals a serial Query() loop would accumulate. Empty queries get
  // empty results. Concurrent QueryBatch calls serialize on the worker
  // pool; Query() calls arriving while a batch is in flight verify
  // sequentially instead of waiting for the pool.
  std::vector<std::vector<QueryMatch>> QueryBatch(
      std::span<const SparseVectorView> queries,
      QueryStats* stats = nullptr, uint32_t top_k = 0) const;

  // Eagerly grows every collection row's verification signature to the
  // full per-candidate hash budget (bayes.max_hashes, or lite_max_hashes
  // under exact_verification) and freezes the signature store — the
  // cold → prefetched → frozen endpoint of the serving state machine.
  // After this, queries perform zero signature-store mutations
  // (bits_computed()/hashes_computed() stay constant) and read the store
  // lock-free. Warm construction from a fully prefetched PersistentIndex
  // (IndexBuildConfig::prefetch_hashes = kPrefetchFull) makes this a
  // no-op top-up. Idempotent, one-way, NOT concurrent-safe: freeze before
  // sharing the searcher across threads.
  void Freeze();
  bool frozen() const;

  // Extends the serving state over rows appended (Dataset::AppendRow) to
  // the collection since construction or the previous sync — the LSM
  // delta growth path (core/dynamic_index.h): each new row gets an empty
  // lazily grown signature-store row and is inserted into the banding
  // buckets with generation-seed hashes, leaving the searcher in exactly
  // the state a fresh build over the grown collection would produce
  // (query results are pair-for-pair identical — asserted by
  // tests/dynamic_index_test.cc). Only legal on a searcher that owns its
  // banding table (built from a Dataset, not warm-started from a
  // PersistentIndex) and is not frozen — std::logic_error otherwise. NOT
  // concurrent-safe: callers serialize against queries, as DynamicIndex
  // does.
  void SyncAppendedRows();

  // Hashing-work tallies of the engaged verification signature store:
  // bits for cosine-like measures, minwise hashes for Jaccard (full-width
  // or b-bit); the non-engaged tally reads 0. Instrumentation, and the
  // frozen-serving invariant checked by tests: a frozen searcher's
  // tallies never change.
  uint64_t bits_computed() const;
  uint64_t hashes_computed() const;

  uint32_t num_bands() const { return num_bands_; }
  uint32_t hashes_per_band() const { return hashes_per_band_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint32_t num_bands_ = 0;
  uint32_t hashes_per_band_ = 0;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_QUERY_SEARCH_H_
