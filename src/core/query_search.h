// Query-mode similarity search: the general problem of paper §1 ("given a
// query object q, retrieve all objects from D with s(x, q) > t"), as
// opposed to the all-pairs self-join the benchmarks focus on.
//
// An index is built once over the collection (LSH banding buckets plus the
// lazy signature store); each query is then hashed, probed against the
// buckets, and its candidates are verified with BayesLSH — so the paper's
// pruning machinery amortizes across queries exactly as it does across
// pairs in the self-join. Supports threshold queries and top-k (top-k is
// implemented as a threshold query with a similarity-ordered cut, the
// standard adaptation).
//
// Queries do not mutate the index and may use vectors not present in the
// collection. With num_threads > 1 the searcher owns a worker pool: the
// index build shards over bands, and each query's candidate verification
// shards over candidates (results identical to single-threaded for any
// thread count). Individual Query() calls must still be serialized by the
// caller — the lazy signature store mutates across queries; one searcher
// per caller thread is the intended external concurrency model.

#ifndef BAYESLSH_CORE_QUERY_SEARCH_H_
#define BAYESLSH_CORE_QUERY_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "candgen/lsh_banding.h"
#include "core/bayes_lsh.h"
#include "lsh/gaussian_source.h"
#include "lsh/signature_store.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

class PersistentIndex;  // core/index_io.h

struct QuerySearchConfig {
  Measure measure = Measure::kCosine;
  double threshold = 0.7;

  // Verification: BayesLSH estimation by default; exact verification of
  // unpruned candidates (the Lite behaviour) if true.
  bool exact_verification = false;

  BayesLshParams bayes;          // hashes_per_round/max_hashes 0 = defaults.
  uint32_t lite_max_hashes = 0;  // 0 = measure default (128 / 64).
  LshBandingParams banding;      // Index shape; num_bands 0 = derive.
  uint64_t seed = 42;

  // Jaccard only: verify with b-bit minwise signatures of this width
  // (lsh/bbit_minwise.h) instead of full 32-bit hashes — 8x smaller
  // signature storage at b = 4. Candidate generation is unchanged. 0 keeps
  // full-width hashes. With b-bit signatures per-query verification runs
  // sequentially (the index build still shards); results remain identical
  // for every thread count.
  uint32_t bbit = 0;

  // Worker threads for index build and per-query verification sharding
  // (0 = all hardware threads, 1 = sequential). Does not make concurrent
  // Query() calls safe — see the class comment.
  uint32_t num_threads = 1;
};

// One query result.
struct QueryMatch {
  uint32_t id = 0;    // Row in the indexed collection.
  double sim = 0.0;   // Estimate (or exact value with exact_verification).

  friend bool operator==(const QueryMatch&, const QueryMatch&) = default;
};

struct QueryStats {
  uint64_t candidates = 0;
  uint64_t pruned = 0;
  uint64_t hashes_compared = 0;
};

// Threshold / top-k search over a fixed collection.
//
// The collection must follow the measure conventions of sim/similarity.h
// (kCosine: L2-normalized rows; kJaccard/kBinaryCosine: binary rows) and
// must outlive the searcher.
class QuerySearcher {
 public:
  QuerySearcher(const Dataset* data, const QuerySearchConfig& config);

  // Warm start: serves from a persistent index (core/index_io.h) instead
  // of building banding buckets and hashing signatures from scratch — the
  // collection is the index's dataset. The index must outlive the
  // searcher. config must agree with the index on measure, seed, bbit and
  // (when set explicitly) banding shape — IndexError otherwise; the
  // threshold may differ, but thresholds below the index's build threshold
  // raise the banding false-negative rate beyond the configured ε. Query
  // results are pair-for-pair identical to a fresh build with the same
  // config (signatures are pure functions of (seed, row)).
  QuerySearcher(const PersistentIndex* index,
                const QuerySearchConfig& config);

  ~QuerySearcher();

  QuerySearcher(const QuerySearcher&) = delete;
  QuerySearcher& operator=(const QuerySearcher&) = delete;

  // All collection rows x with s(x, q) >= threshold (subject to the
  // BayesLSH guarantees), sorted by decreasing similarity.
  std::vector<QueryMatch> Query(const SparseVectorView& q,
                                QueryStats* stats = nullptr) const;

  // The k most similar rows among those reaching the threshold; ties by id.
  std::vector<QueryMatch> QueryTopK(const SparseVectorView& q, uint32_t k,
                                    QueryStats* stats = nullptr) const;

  uint32_t num_bands() const { return num_bands_; }
  uint32_t hashes_per_band() const { return hashes_per_band_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint32_t num_bands_ = 0;
  uint32_t hashes_per_band_ = 0;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_QUERY_SEARCH_H_
