// Persistent index: build once, serve many queries.
//
// Every serving session previously re-paid the full index-construction
// bill — hashing each collection row l*k times for the banding buckets and
// re-growing verification signatures from zero. PersistentIndex splits
// that cost out of the serve path: an offline Build() materializes the
// complete serving state (collection + banding buckets + prefetched
// verification signatures), Save() writes it as one versioned binary file
// (docs/FORMATS.md, "Index file"), and Load() adopts it back in a single
// I/O-bound pass. A QuerySearcher constructed from a loaded index answers
// queries pair-for-pair identically to one built from scratch — signatures
// are pure functions of (seed, row), so persistence changes where hashing
// happens, never what is returned.
//
// File integrity: the header carries magic bytes, a format version, an
// endianness canary, and a config fingerprint (a Mix64 chain over the
// build configuration and collection shape). Truncated, corrupt,
// version-bumped or mis-configured files fail loading with IndexError and
// leave no partially initialized object behind; the CLI maps that to exit
// code 2.
//
// Ownership: the index owns its dataset and is handled through
// std::unique_ptr (internal stores point at the owned dataset, so the
// object is non-movable). Searchers constructed from an index require it
// to outlive them and copy its signature rows, so many searchers can
// serve from one loaded index independently.

#ifndef BAYESLSH_CORE_INDEX_IO_H_
#define BAYESLSH_CORE_INDEX_IO_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "candgen/banding_index.h"
#include "candgen/lsh_banding.h"
#include "kernel/kernels.h"
#include "kernel/klsh.h"
#include "lsh/bbit_minwise.h"
#include "lsh/gaussian_source.h"
#include "lsh/signature_store.h"
#include "sim/similarity.h"
#include "vec/dataset.h"
#include "vec/io.h"

namespace bayeslsh {

// Raised on malformed, truncated, version- or config-mismatched index
// files, and on attempts to pair an index with an incompatible config.
class IndexError : public IoError {
 public:
  using IoError::IoError;
};

// On-disk format version written to index files by default. Version 2
// page-aligns every signature blob (docs/FORMATS.md) so LoadFileMmap can
// map the slabs read-only instead of copying them. Version 3 extends the
// measure tag with weighted Jaccard (ICWS), kernel cosine (KLSH) and
// Euclidean, and adds the KLSH measure-config section (kernel spec +
// family shape + anchor rows) for kernel-cosine indexes. Load still
// accepts version-1 and -2 files (v1 is copying-load only), and Save can
// be asked to emit any supported version — though only v3 can carry the
// new measures.
inline constexpr uint32_t kIndexFormatVersion = 3;

// Oldest format version Load still reads.
inline constexpr uint32_t kIndexMinFormatVersion = 1;

// IndexBuildConfig::prefetch_hashes sentinel: prefetch every row to the
// default per-candidate serving budget (BayesLshParams::max_hashes, 4096
// hashes). An index built this way holds the fully hashed, frozen-form
// signatures: QuerySearcher::Freeze() on a searcher warm-started from it
// (at default budgets) is a pure state flip with zero additional hashing.
// The file format is unchanged — only how much of each row is
// materialized.
inline constexpr uint32_t kPrefetchFull = 0xffffffffu;

struct IndexBuildConfig {
  Measure measure = Measure::kCosine;

  // Similarity threshold the banding shape is derived for. Serving at a
  // higher threshold is always safe; serving below the build threshold
  // raises the banding false-negative rate beyond the configured ε.
  double threshold = 0.7;

  // Banding shape; 0 fields are resolved exactly as by QuerySearcher
  // (ResolveBandingShape), so a fresh searcher and an index built from the
  // same config agree.
  LshBandingParams banding;

  // Master seed; generation/verification hash streams are derived from it
  // exactly as in the pipeline (core/pipeline.h).
  uint64_t seed = 42;

  // Jaccard only: store verification signatures as b-bit minwise
  // (lsh/bbit_minwise.h) with this width; 0 keeps full 32-bit hashes.
  uint32_t bbit = 0;

  // kKernelCosine only (mirrors QuerySearchConfig): the kernel the measure
  // is defined against and the KLSH hash-family shape. klsh.seed is
  // ignored — the master `seed` above derives the hash streams.
  KernelSpec kernel;
  KlshParams klsh;

  // kKernelCosine only: pre-sampled anchor rows. The built index persists
  // its anchors, and every component hashing against the index must use
  // them (warm searchers adopt them automatically). Null samples
  // min(klsh.num_anchors, data rows) from the dataset with the master
  // seed; compaction passes the base index's anchors here so adopted
  // signatures stay valid.
  std::shared_ptr<const Dataset> klsh_anchors;

  // Verification hashes prefetched per row at build time, rounded up to
  // whole chunks; 0 selects one verification round (32 cosine bits / 16
  // Jaccard ints — the horizon the sharded query path prefetches anyway),
  // kPrefetchFull the full default serving budget (the fully hashed form
  // a frozen searcher serves from). More prefetch makes the serve path
  // cheaper at the price of a bigger index file; it never changes query
  // results.
  uint32_t prefetch_hashes = 0;

  // Worker threads for the build (0 = all hardware threads).
  uint32_t num_threads = 1;
};

// Warm-start material for Build(): a map from each row of the new
// dataset to the row of an existing index holding the same content, so
// the build adopts that row's already-computed verification signature
// instead of re-hashing it (signatures are pure functions of
// (seed, row content), so adopted and recomputed bytes are identical).
// This is what makes compaction (core/dynamic_index.h) cheap: folding a
// small delta into a large base re-hashes only the delta rows.
//
// source_rows[i] names the source row for new row i, or kFreshRow for a
// row with no donor (hashed from scratch as usual). The caller owns the
// content-equality guarantee — Build can and does check that the source
// index's (measure, seed, bbit) match the config, but not the row bytes.
class PersistentIndex;

struct SignatureAdoption {
  static constexpr uint32_t kFreshRow = 0xffffffffu;

  const PersistentIndex* source = nullptr;
  std::vector<uint32_t> source_rows;
};

class PersistentIndex {
 public:
  PersistentIndex(const PersistentIndex&) = delete;
  PersistentIndex& operator=(const PersistentIndex&) = delete;

  // Builds the full serving state over `data` (which must already follow
  // the measure conventions of sim/similarity.h — the index stores the
  // rows as given). Throws std::invalid_argument on invalid config
  // (e.g. bbit with a cosine measure).
  //
  // With a non-null `adopt`, verification signatures are copied per row
  // from adopt->source wherever source_rows names a donor (see
  // SignatureAdoption); throws std::invalid_argument when the source's
  // (measure, seed, bbit) disagree with the config or the map's shape is
  // wrong. Banding generation hashes (l*k per row) are always recomputed
  // — they are never stored per row, only bucketed.
  static std::unique_ptr<PersistentIndex> Build(
      Dataset data, const IndexBuildConfig& cfg,
      const SignatureAdoption* adopt = nullptr);

  // Deserializes an index. Throws IndexError on any malformed input:
  // wrong magic, unsupported version, nonzero reserved header byte,
  // corrupt fingerprint, truncated or structurally invalid sections.
  // expect_eof = false skips the trailing-bytes check so an index can be
  // embedded as a section of an enclosing stream (the dynamic-index
  // manifest, core/dynamic_index.h — the enclosing reader owns the
  // end-of-file framing); standalone loads keep the default strict
  // framing. LoadFile additionally fails closed on paths that are not
  // readable non-empty regular files (directories, zero-byte files).
  static std::unique_ptr<PersistentIndex> Load(std::istream& in,
                                               bool expect_eof = true);
  static std::unique_ptr<PersistentIndex> LoadFile(const std::string& path);

  // Zero-copy load: maps the file read-only and resolves every signature
  // row to a view into the mapping, so warm start is O(1) in signature
  // bytes (pages fault in on first use). Requires a standalone format-v2
  // file (page-aligned blobs); v1 or embedded files fail with IndexError
  // telling the caller to re-save. The index owns the mapping; it is
  // released with the index. On platforms without mmap this falls back to
  // the copying LoadFile.
  static std::unique_ptr<PersistentIndex> LoadFileMmap(
      const std::string& path);

  // True when this index serves signature rows out of an mmap'd file
  // (constructed by LoadFileMmap).
  bool mmap_backed() const { return mapping_ != nullptr; }

  // Serializes the index (deterministic: equal indexes produce equal
  // bytes). `format_version` selects the wire layout — the default v2
  // (page-aligned, mmap-able) or v1 for compatibility fixtures. Throws
  // IndexError on write failure or an unsupported version.
  void Save(std::ostream& out,
            uint32_t format_version = kIndexFormatVersion) const;
  void SaveFile(const std::string& path,
                uint32_t format_version = kIndexFormatVersion) const;

  const Dataset& data() const { return data_; }
  Measure measure() const { return measure_; }
  double build_threshold() const { return threshold_; }
  uint64_t seed() const { return seed_; }
  uint32_t hashes_per_band() const { return k_; }
  uint32_t num_bands() const { return l_; }
  uint32_t bbit() const { return bbit_; }
  SignatureKind signature_kind() const;
  const BandingIndex& banding() const { return banding_; }

  // kKernelCosine only (defaults / null otherwise): the kernel spec, KLSH
  // family shape, and anchor rows the index was built with. Warm searchers
  // adopt all three so their hash family is bit-for-bit the index's.
  const KernelSpec& kernel_spec() const { return kernel_spec_; }
  const KlshParams& klsh_params() const { return klsh_params_; }
  const std::shared_ptr<const Dataset>& klsh_anchors() const {
    return klsh_anchors_;
  }

  // The verification signature store matching signature_kind(); the other
  // two accessors return nullptr.
  const BitSignatureStore* bit_store() const { return bits_.get(); }
  const IntSignatureStore* int_store() const { return ints_.get(); }
  const BbitSignatureStore* bbit_store() const { return bbits_.get(); }

  // Mix64 chain over (format version, measure, signature kind, bbit, seed,
  // threshold bits, banding shape, collection shape) — the value stored in
  // and checked against the file header. The chain is seeded with the
  // file's format version, so a v1 and a v2 file of the same index carry
  // different fingerprints and neither validates as the other.
  uint64_t Fingerprint(uint32_t format_version = kIndexFormatVersion) const;

  ~PersistentIndex();  // Out-of-line: MappedFile is incomplete here.

 private:
  struct MappedFile;  // RAII mmap handle (index_io.cc).

  // Shared body of Load and LoadFileMmap. A non-null `mapped_base` means
  // `in` streams over that mapping and signature sections resolve to
  // zero-copy views (requires format v2).
  static std::unique_ptr<PersistentIndex> LoadInternal(std::istream& in,
                                                       bool expect_eof,
                                                       const char* mapped_base,
                                                       size_t mapped_size);

  PersistentIndex() = default;

  Dataset data_;
  Measure measure_ = Measure::kCosine;
  double threshold_ = 0.0;
  uint64_t seed_ = 0;
  uint32_t k_ = 0;
  uint32_t l_ = 0;
  uint32_t bbit_ = 0;
  BandingIndex banding_;

  // Exactly one store is non-null; for SRP cosine measures the Gaussian
  // source backing its hasher is owned here, and for the kernel cosine
  // the kernel, verification-stream KLSH hasher, row cache and anchor
  // rows are.
  std::shared_ptr<const GaussianSource> verify_gauss_;
  KernelSpec kernel_spec_;
  KlshParams klsh_params_;
  std::shared_ptr<const Dataset> klsh_anchors_;
  std::unique_ptr<const Kernel> kernel_;
  std::shared_ptr<const KlshHasher> verify_klsh_;
  std::shared_ptr<KlshRowCache> klsh_cache_;
  std::unique_ptr<BitSignatureStore> bits_;
  std::unique_ptr<IntSignatureStore> ints_;
  std::unique_ptr<BbitSignatureStore> bbits_;

  // Non-null only for LoadFileMmap indexes: keeps the mapping the stores'
  // row views point into alive for the life of the index. (Destruction
  // order vs the stores is immaterial — store destructors free owned
  // vectors and never dereference views.)
  std::unique_ptr<MappedFile> mapping_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_INDEX_IO_H_
