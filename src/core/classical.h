// Classical (non-Bayesian) candidate verification, paper §2-§3:
//
//  * ExactVerify      — compute every candidate's exact similarity; keep
//                       pairs >= threshold ("LSH" / exact baselines).
//  * MLE verification — estimate the similarity as the match fraction over
//                       a *fixed* number of hashes ("LSH Approx"); keep
//                       pairs whose estimate >= threshold. The fixed hash
//                       count is the knob §3.1 shows cannot be tuned well,
//                       which is BayesLSH's motivation.

#ifndef BAYESLSH_CORE_CLASSICAL_H_
#define BAYESLSH_CORE_CLASSICAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "lsh/signature_store.h"
#include "sim/brute_force.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

struct ClassicalStats {
  uint64_t pairs_in = 0;
  uint64_t accepted = 0;
  uint64_t hashes_compared = 0;
};

// All three verifiers shard the candidate list across `pool` when one is
// provided (null = sequential); output is identical either way — pairs are
// verified independently and shard outputs concatenate in input order.

// Exact verification of candidate pairs under `measure` (see
// sim/similarity.h for the kCosine pre-normalization convention).
std::vector<ScoredPair> ExactVerify(
    const Dataset& data, const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    double threshold, Measure measure, ClassicalStats* stats = nullptr,
    ThreadPool* pool = nullptr);

// MLE verification for cosine: m/n estimates the SRP collision probability
// r, so the similarity estimate is r2c(m/n). Uses `num_hashes` bits per pair.
// The parallel path pre-hashes every involved row to num_hashes (exactly the
// set and depth the sequential lazy path hashes), then compares read-only.
std::vector<ScoredPair> MleVerifyCosine(
    BitSignatureStore* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    uint32_t num_hashes, ClassicalStats* stats = nullptr,
    ThreadPool* pool = nullptr);

// MLE verification for Jaccard: the estimate is the match fraction m/n
// itself. Uses `num_hashes` minwise hashes per pair.
std::vector<ScoredPair> MleVerifyJaccard(
    IntSignatureStore* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    uint32_t num_hashes, ClassicalStats* stats = nullptr,
    ThreadPool* pool = nullptr);

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_CLASSICAL_H_
