// Explicit instantiations of InferenceCache for the built-in posterior
// models; the template definitions live in core/inference_cache_impl.h.

#include "core/inference_cache_impl.h"

namespace bayeslsh {

template class InferenceCache<JaccardPosterior>;
template class InferenceCache<CosinePosterior>;
template class InferenceCache<BbitMinwisePosterior>;

}  // namespace bayeslsh
