#include "core/sharded_index.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/prng.h"

namespace bayeslsh {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Salt folded into the partitioning hash so shard placement is its own
// hash stream, uncorrelated with the signature/banding streams derived
// from the same master seed.
constexpr uint64_t kShardSalt = 0x73686172644c5348ULL;  // "shardLSH"

// The one result ordering of the serving stack (same rule as
// DynamicIndex): similarity descending, ties by ascending logical id.
void SortMerged(std::vector<QueryMatch>* out) {
  std::sort(out->begin(), out->end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
            });
}

std::vector<std::pair<DimId, float>> RowEntries(const SparseVectorView& v) {
  std::vector<std::pair<DimId, float>> entries;
  entries.reserve(v.size());
  for (uint32_t i = 0; i < v.size(); ++i) {
    entries.emplace_back(v.indices[i], v.values[i]);
  }
  return entries;
}

// The router's owned copy of a fan-out's query batch: sub-requests may
// outlive the caller's views (an abandoned request sits in a shard queue
// until its executor drains it), so every shard shares one owned copy.
struct OwnedQueries {
  std::vector<std::vector<DimId>> indices;
  std::vector<std::vector<float>> values;
  std::vector<SparseVectorView> views;  // into indices/values, built last

  static std::shared_ptr<const OwnedQueries> Copy(
      std::span<const SparseVectorView> queries) {
    auto owned = std::make_shared<OwnedQueries>();
    owned->indices.reserve(queries.size());
    owned->values.reserve(queries.size());
    for (const SparseVectorView& q : queries) {
      owned->indices.emplace_back(q.indices.begin(), q.indices.end());
      owned->values.emplace_back(q.values.begin(), q.values.end());
    }
    owned->views.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      owned->views.push_back(SparseVectorView{
          {owned->indices[i].data(), owned->indices[i].size()},
          {owned->values[i].data(), owned->values[i].size()}});
    }
    return owned;
  }
};

// One shard's answer slot: the router waits on cv with a deadline and
// may abandon; the executor fills it and notifies regardless.
struct SubResult {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool failed = false;
  std::string error;
  std::vector<std::vector<QueryMatch>> results;  // shard-LOCAL ids
  QueryStats stats;
  std::atomic<bool> abandoned{false};
};

struct SubRequest {
  std::shared_ptr<const OwnedQueries> queries;
  uint32_t top_k = 0;
  std::shared_ptr<SubResult> result;
};

}  // namespace

struct ShardedIndex::Impl {
  struct Shard {
    std::unique_ptr<DynamicIndex> dyn;
    std::unique_ptr<CircuitBreaker> breaker;

    // Ascending global ids routed here; position == shard-local logical
    // id (DynamicIndex assigns 0,1,2,... exactly as we append). Guarded
    // by the router lock `mu`; never shrinks (tombstoned ids keep their
    // mapping, mirroring DynamicIndex's never-reuse contract).
    std::vector<uint32_t> globals;

    // Executor: one thread per shard draining a FIFO of sub-requests,
    // so a wedged or slow shard blocks only itself.
    std::mutex qmu;
    std::condition_variable qcv;
    std::deque<SubRequest> queue;
    bool stop = false;
    std::thread worker;
  };

  ShardedIndexConfig cfg;
  uint64_t seed = 0;
  Measure measure = Measure::kCosine;
  uint32_t num_dims = 0;
  SteadyClock::time_point epoch = SteadyClock::now();

  std::vector<std::unique_ptr<Shard>> shards;
  std::unique_ptr<ShardFaultInjector> injector;

  // Router lock: global id assignment + the global<->local maps.
  // Queries take it shared (merge-time mapping), Add exclusive.
  mutable std::shared_mutex mu;
  uint32_t next_id = 0;

  double NowSeconds() const {
    return std::chrono::duration<double>(SteadyClock::now() - epoch).count();
  }

  void ExecutorLoop(uint32_t s) {
    Shard& shard = *shards[s];
    for (;;) {
      SubRequest req;
      {
        std::unique_lock<std::mutex> lock(shard.qmu);
        shard.qcv.wait(lock,
                       [&] { return shard.stop || !shard.queue.empty(); });
        if (shard.queue.empty()) return;  // stop && drained
        req = std::move(shard.queue.front());
        shard.queue.pop_front();
      }
      if (req.result->abandoned.load(std::memory_order_acquire)) continue;
      bool failed = false;
      std::string error;
      std::vector<std::vector<QueryMatch>> results;
      QueryStats stats;
      try {
        injector->BeforeShardQuery(s);
        results = shard.dyn->QueryBatch(req.queries->views, &stats,
                                        req.top_k);
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      }
      {
        std::lock_guard<std::mutex> lock(req.result->mu);
        req.result->failed = failed;
        req.result->error = std::move(error);
        req.result->results = std::move(results);
        req.result->stats = stats;
        req.result->done = true;
      }
      req.result->cv.notify_all();
    }
  }

  // The fan-out/collect/merge core behind Query/QueryTopK/QueryBatch.
  // Returns one result list per query slot, in GLOBAL ids, merged over
  // every shard that answered within the budget.
  std::vector<std::vector<QueryMatch>> FanOut(
      std::span<const SparseVectorView> queries, uint32_t top_k,
      const ServeOptions& opts, QueryStats* stats) const {
    const uint32_t K = static_cast<uint32_t>(shards.size());
    const auto start = SteadyClock::now();
    const bool has_deadline = opts.deadline_seconds > 0;
    const bool has_shard_to = cfg.shard_timeout_seconds > 0;
    const auto deadline_tp =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(opts.deadline_seconds));
    const auto shard_to_tp =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(cfg.shard_timeout_seconds));

    // Dispatch to every shard whose breaker admits the request. Shards
    // skipped here simply don't contribute (no outcome to record).
    auto owned = OwnedQueries::Copy(queries);
    struct Pending {
      uint32_t shard;
      std::shared_ptr<SubResult> res;
    };
    std::vector<Pending> pending;
    pending.reserve(K);
    for (uint32_t s = 0; s < K; ++s) {
      Shard& shard = *shards[s];
      if (!shard.breaker->AllowRequest(NowSeconds())) continue;
      auto res = std::make_shared<SubResult>();
      {
        std::lock_guard<std::mutex> lock(shard.qmu);
        shard.queue.push_back(SubRequest{owned, top_k, res});
      }
      shard.qcv.notify_one();
      pending.push_back(Pending{s, std::move(res)});
    }

    // Collect, bounded by min(per-shard timeout, query deadline). Once
    // the deadline is past, the remaining waits return immediately —
    // already-answered shards are still harvested, the rest abandoned.
    uint32_t answered = 0;
    bool deadline_hit = false;
    std::vector<std::pair<uint32_t, std::vector<std::vector<QueryMatch>>>>
        collected;
    collected.reserve(pending.size());
    for (Pending& p : pending) {
      Shard& shard = *shards[p.shard];
      bool done = false;
      {
        std::unique_lock<std::mutex> lock(p.res->mu);
        auto is_done = [&] { return p.res->done; };
        if (!has_deadline && !has_shard_to) {
          p.res->cv.wait(lock, is_done);
          done = true;
        } else {
          auto bound = deadline_tp;
          if (!has_deadline || (has_shard_to && shard_to_tp < deadline_tp)) {
            bound = shard_to_tp;
          }
          done = p.res->cv.wait_until(lock, bound, is_done);
        }
      }
      if (done) {
        if (p.res->failed) {
          shard.breaker->RecordFailure(NowSeconds());
        } else {
          shard.breaker->RecordSuccess();
          ++answered;
          if (stats != nullptr) stats->MergeFrom(p.res->stats);
          collected.emplace_back(p.shard, std::move(p.res->results));
        }
        continue;
      }
      // Timed out: abandon. A per-shard timeout is a health signal (the
      // server's own bound); a query deadline is the client's budget and
      // says nothing about the shard — release any probe slot, count
      // nothing.
      p.res->abandoned.store(true, std::memory_order_release);
      const auto now_tp = SteadyClock::now();
      if (has_shard_to && now_tp >= shard_to_tp) {
        shard.breaker->RecordFailure(NowSeconds());
      } else {
        shard.breaker->RecordAbandoned();
      }
      if (has_deadline && now_tp >= deadline_tp) deadline_hit = true;
    }

    // Merge: map shard-local ids to global ids under the router lock,
    // concatenate per query slot, re-sort with the one ordering rule,
    // truncate to top_k.
    std::vector<std::vector<QueryMatch>> merged(queries.size());
    {
      std::shared_lock<std::shared_mutex> lock(mu);
      for (auto& [s, shard_results] : collected) {
        const std::vector<uint32_t>& globals = shards[s]->globals;
        for (size_t qi = 0; qi < shard_results.size(); ++qi) {
          for (QueryMatch m : shard_results[qi]) {
            m.id = globals[m.id];
            merged[qi].push_back(m);
          }
        }
      }
    }
    for (auto& list : merged) {
      SortMerged(&list);
      if (top_k != 0 && list.size() > top_k) list.resize(top_k);
    }

    if (stats != nullptr) {
      stats->shards_total += K;
      stats->shards_answered += answered;
      if (deadline_hit) ++stats->deadline_expired;
    }
    return merged;
  }
};

uint32_t ShardedIndex::ShardOfId(uint64_t seed, uint32_t id,
                                 uint32_t num_shards) {
  return static_cast<uint32_t>(Mix64(seed, kShardSalt, id) % num_shards);
}

ShardedIndex::ShardedIndex(Dataset data, const IndexBuildConfig& build,
                           const ShardedIndexConfig& cfg)
    : impl_(std::make_unique<Impl>()) {
  if (cfg.num_shards == 0) {
    throw std::invalid_argument("ShardedIndex: num_shards must be >= 1");
  }
  impl_->cfg = cfg;
  impl_->seed = build.seed;
  impl_->num_dims = data.num_dims();
  const uint32_t K = cfg.num_shards;
  impl_->injector = std::make_unique<ShardFaultInjector>(K);

  // Partition the corpus row-by-row: row i is global id i, placed by the
  // seeded hash. Each shard then gets its own frozen base built with the
  // SAME build config — banding shape depends only on (measure,
  // threshold, params), never on data size, so all shards (and the
  // equivalent unsharded index) agree on every hash.
  //
  // KLSH anchors are the one piece of hash-family state that IS sampled
  // from data, so they are resolved here, ONCE, from the full corpus —
  // every shard (and the equivalent unsharded index given the same
  // anchors) then hashes with the identical family. Without this each
  // shard would sample from its own sub-corpus and the shards would
  // disagree on every signature.
  IndexBuildConfig shard_build = build;
  if (build.measure == Measure::kKernelCosine &&
      shard_build.klsh_anchors == nullptr) {
    shard_build.klsh_anchors =
        std::make_shared<const Dataset>(SampleKlshAnchors(
            data, std::min(build.klsh.num_anchors, data.num_vectors()),
            build.seed));
  }
  std::vector<DatasetBuilder> builders;
  builders.reserve(K);
  for (uint32_t s = 0; s < K; ++s) builders.emplace_back(data.num_dims());
  std::vector<std::vector<uint32_t>> globals(K);
  const uint32_t n = data.num_vectors();
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t s = ShardOfId(build.seed, i, K);
    builders[s].AddRow(RowEntries(data.Row(i)));
    globals[s].push_back(i);
  }
  impl_->next_id = n;

  DynamicIndexConfig dcfg;
  dcfg.threshold = cfg.threshold;
  dcfg.exact_verification = cfg.exact_verification;
  dcfg.num_threads = cfg.num_threads;
  impl_->shards.reserve(K);
  for (uint32_t s = 0; s < K; ++s) {
    auto shard = std::make_unique<Impl::Shard>();
    shard->dyn = std::make_unique<DynamicIndex>(
        PersistentIndex::Build(std::move(builders[s]).Build(), shard_build),
        dcfg);
    shard->breaker = std::make_unique<CircuitBreaker>(cfg.breaker);
    shard->globals = std::move(globals[s]);
    impl_->shards.push_back(std::move(shard));
  }
  impl_->measure = impl_->shards[0]->dyn->measure();
  for (uint32_t s = 0; s < K; ++s) {
    impl_->shards[s]->worker = std::thread(&Impl::ExecutorLoop, impl_.get(), s);
  }
}

ShardedIndex::~ShardedIndex() {
  // Wake wedged executors first, then drain and join them.
  impl_->injector->Shutdown();
  for (auto& shard : impl_->shards) {
    {
      std::lock_guard<std::mutex> lock(shard->qmu);
      shard->stop = true;
      // Unreached requests would hang routers waiting on them; there are
      // none by construction (the destructor runs after all queries),
      // but drop them defensively.
      shard->queue.clear();
    }
    shard->qcv.notify_all();
  }
  for (auto& shard : impl_->shards) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

uint32_t ShardedIndex::Add(const SparseVectorView& v) {
  std::unique_lock<std::shared_mutex> lock(impl_->mu);
  const uint32_t id = impl_->next_id;
  const uint32_t s =
      ShardOfId(impl_->seed, id, static_cast<uint32_t>(impl_->shards.size()));
  Impl::Shard& shard = *impl_->shards[s];
  const uint32_t local = shard.dyn->Add(v);  // throws on bad input: id unused
  if (local != shard.globals.size()) {
    throw std::logic_error("ShardedIndex: shard-local id map out of sync");
  }
  shard.globals.push_back(id);
  impl_->next_id = id + 1;
  return id;
}

bool ShardedIndex::Remove(uint32_t id) {
  std::unique_lock<std::shared_mutex> lock(impl_->mu);
  if (id >= impl_->next_id) return false;
  const uint32_t s =
      ShardOfId(impl_->seed, id, static_cast<uint32_t>(impl_->shards.size()));
  Impl::Shard& shard = *impl_->shards[s];
  const auto it =
      std::lower_bound(shard.globals.begin(), shard.globals.end(), id);
  if (it == shard.globals.end() || *it != id) return false;
  const uint32_t local =
      static_cast<uint32_t>(it - shard.globals.begin());
  return shard.dyn->Remove(local);
}

bool ShardedIndex::Contains(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(impl_->mu);
  if (id >= impl_->next_id) return false;
  const uint32_t s =
      ShardOfId(impl_->seed, id, static_cast<uint32_t>(impl_->shards.size()));
  const Impl::Shard& shard = *impl_->shards[s];
  const auto it =
      std::lower_bound(shard.globals.begin(), shard.globals.end(), id);
  if (it == shard.globals.end() || *it != id) return false;
  return shard.dyn->Contains(
      static_cast<uint32_t>(it - shard.globals.begin()));
}

std::vector<QueryMatch> ShardedIndex::Query(const SparseVectorView& q,
                                            QueryStats* stats,
                                            const ServeOptions& opts) const {
  auto merged = impl_->FanOut({&q, 1}, /*top_k=*/0, opts, stats);
  return std::move(merged[0]);
}

std::vector<QueryMatch> ShardedIndex::QueryTopK(const SparseVectorView& q,
                                                uint32_t k, QueryStats* stats,
                                                const ServeOptions& opts) const {
  if (k == 0) return {};
  auto merged = impl_->FanOut({&q, 1}, k, opts, stats);
  return std::move(merged[0]);
}

std::vector<std::vector<QueryMatch>> ShardedIndex::QueryBatch(
    std::span<const SparseVectorView> queries, QueryStats* stats,
    uint32_t top_k, const ServeOptions& opts) const {
  if (queries.empty()) return {};
  return impl_->FanOut(queries, top_k, opts, stats);
}

void ShardedIndex::WaitForCompaction() {
  for (auto& shard : impl_->shards) shard->dyn->WaitForCompaction();
}

bool ShardedIndex::WaitForCompaction(double timeout_seconds) {
  // One wall-clock budget across all shards: each shard gets whatever
  // remains, so a single wedged compaction bounds the whole drain.
  const auto deadline =
      SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                               std::chrono::duration<double>(timeout_seconds));
  bool all_drained = true;
  for (auto& shard : impl_->shards) {
    const double remaining =
        std::chrono::duration<double>(deadline - SteadyClock::now()).count();
    if (!shard->dyn->WaitForCompaction(remaining > 0 ? remaining : 0)) {
      all_drained = false;
    }
  }
  return all_drained;
}

ShardFaultInjector& ShardedIndex::fault_injector() const {
  return *impl_->injector;
}

ShardState ShardedIndex::shard_state(uint32_t shard) const {
  const Impl::Shard& s = *impl_->shards.at(shard);
  ShardState state;
  state.breaker = s.breaker->state(impl_->NowSeconds());
  state.consecutive_failures = s.breaker->consecutive_failures();
  state.num_live = s.dyn->num_live();
  return state;
}

double ShardedIndex::Now() const { return impl_->NowSeconds(); }

uint32_t ShardedIndex::num_shards() const {
  return static_cast<uint32_t>(impl_->shards.size());
}

Measure ShardedIndex::measure() const { return impl_->measure; }

uint32_t ShardedIndex::num_dims() const { return impl_->num_dims; }

uint32_t ShardedIndex::num_live() const {
  uint32_t live = 0;
  for (const auto& shard : impl_->shards) live += shard->dyn->num_live();
  return live;
}

uint64_t ShardedIndex::seed() const { return impl_->seed; }

}  // namespace bayeslsh
