#include "core/query_search.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "candgen/banding_index.h"
#include "common/bit_ops.h"
#include "common/prng.h"
#include "common/thread_pool.h"
#include "core/bbit_posterior.h"
#include "core/cosine_posterior.h"
#include "core/index_io.h"
#include "core/inference_cache.h"
#include "core/jaccard_posterior.h"
#include "core/pipeline.h"
#include "euclidean/distance_posterior.h"
#include "euclidean/pstable_hasher.h"
#include "kernel/kernels.h"
#include "kernel/klsh.h"
#include "lsh/bbit_minwise.h"
#include "lsh/icws_hasher.h"
#include "lsh/minwise_hasher.h"
#include "lsh/srp_hasher.h"

namespace bayeslsh {

// Instantiated in euclidean/nn_search.cc.
extern template class InferenceCache<EuclideanPosterior>;

namespace {

// Measures verified through the cosine posterior over a bit store: plain
// SRP cosine, binary cosine, and the kernel cosine (KLSH bits obey the
// same collision law — kernel/klsh.h).
bool CosineLike(Measure m) {
  return m == Measure::kCosine || m == Measure::kBinaryCosine ||
         m == Measure::kKernelCosine;
}

// Below this many candidates per worker a query is verified sequentially.
constexpr uint64_t kMinQueryCandidatesPerShard = 16;

// A mutex-guarded pool of inference caches. Every serving path leases the
// caches it needs for one call (one for a serial query, one per worker for
// a sharded query or a batch) and returns them afterwards, so concurrent
// Query()/QueryBatch() callers never share a cache — the memoized state
// still persists across calls through reuse of returned caches. Leasing
// costs two uncontended lock acquisitions per call, never one per
// estimate.
template <typename Model>
class CachePool {
 public:
  void Configure(const Model* model, uint32_t hashes_per_round,
                 uint32_t max_hashes, double epsilon, double delta,
                 double gamma) {
    model_ = model;
    k_ = hashes_per_round;
    budget_ = max_hashes;
    epsilon_ = epsilon;
    delta_ = delta;
    gamma_ = gamma;
  }

  std::vector<InferenceCache<Model>*> Acquire(uint32_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<InferenceCache<Model>*> out;
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!free_.empty()) {
        out.push_back(free_.back());
        free_.pop_back();
      } else {
        owned_.push_back(std::make_unique<InferenceCache<Model>>(
            model_, k_, budget_, epsilon_, delta_, gamma_));
        out.push_back(owned_.back().get());
      }
    }
    return out;
  }

  void Release(const std::vector<InferenceCache<Model>*>& caches) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.insert(free_.end(), caches.begin(), caches.end());
  }

 private:
  const Model* model_ = nullptr;
  uint32_t k_ = 0;
  uint32_t budget_ = 0;
  double epsilon_ = 0.0;
  double delta_ = 0.0;
  double gamma_ = 0.0;

  std::mutex mu_;
  std::vector<std::unique_ptr<InferenceCache<Model>>> owned_;
  std::vector<InferenceCache<Model>*> free_;
};

// RAII lease of n caches from a CachePool.
template <typename Model>
class CacheLease {
 public:
  CacheLease(CachePool<Model>* pool, uint32_t n)
      : pool_(pool), caches_(pool->Acquire(n)) {}
  ~CacheLease() { pool_->Release(caches_); }

  CacheLease(const CacheLease&) = delete;
  CacheLease& operator=(const CacheLease&) = delete;

  InferenceCache<Model>& operator[](uint32_t i) const { return *caches_[i]; }

 private:
  CachePool<Model>* pool_;
  std::vector<InferenceCache<Model>*> caches_;
};

void SortMatches(std::vector<QueryMatch>* out) {
  std::sort(out->begin(), out->end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
            });
}

void MergeStats(const QueryStats& from, QueryStats* into) {
  if (into != nullptr) into->MergeFrom(from);
}

// Grows every row to `ensure`'s target, sharded over rows; returns the
// total hashing work for one AddBitsComputed/AddHashesComputed merge.
template <typename EnsureFn>
uint64_t PrefetchAllRows(uint32_t num_rows, ThreadPool* pool,
                         const EnsureFn& ensure) {
  return ParallelWorkSum(pool, num_rows, [&](uint64_t row) {
    return ensure(static_cast<uint32_t>(row));
  });
}

}  // namespace

struct QuerySearcher::Impl {
  const Dataset* data;
  QuerySearchConfig cfg;
  uint32_t k = 0;  // Hashes per band.
  uint32_t l = 0;  // Bands.
  uint32_t lite_h = 0;

  // Accept threshold on the score axis: cfg.threshold for similarity
  // measures, -radius for Euclidean (scores are negated distances —
  // sim/similarity.h).
  double score_threshold = 0.0;

  // Hash families, as polymorphic chunk hashers: the generation
  // (banding-seed) family feeds the banding build, query probes, and
  // incremental inserts; the verification family lives inside the engaged
  // store (bits->hasher() / ints->hasher()). Exactly one of the bit/int
  // gen hashers is engaged, matching the store. The concrete sources they
  // wrap are owned alongside (Gaussians for SRP, the kernel + anchors for
  // KLSH); verify_minhash backs the b-bit query packing path only.
  std::shared_ptr<const GaussianSource> gen_gauss;
  std::shared_ptr<const GaussianSource> verify_gauss;
  std::optional<MinwiseHasher> verify_minhash;
  std::shared_ptr<const WordChunkHasher> gen_bits_hasher;
  std::shared_ptr<const IntChunkHasher> gen_ints_hasher;

  // Kernel-cosine context: one kernel object, generation/verification KLSH
  // hashers over the SAME anchor set (seeds differ, anchors must not — see
  // QuerySearchConfig::klsh_anchors), and the row cache both streams share
  // (anchor kernel rows are seed-independent).
  std::unique_ptr<const Kernel> kernel;
  std::shared_ptr<const KlshHasher> gen_klsh;
  std::shared_ptr<const KlshHasher> verify_klsh;
  std::shared_ptr<KlshRowCache> klsh_cache;

  // Collection stores (exactly one engaged, per measure/bbit). The stores
  // are the explicitly `mutable`, internally synchronized serving state
  // behind Query() const: all growth reachable from a const searcher goes
  // through the store's mutex-guarded MatchAgainstQuery / GrowthLock
  // extension points (or is absent entirely once frozen) — see
  // lsh/signature_store.h.
  mutable std::optional<BitSignatureStore> bits;
  mutable std::optional<IntSignatureStore> ints;
  mutable std::optional<BbitSignatureStore> bbits;

  // Posterior models (threshold-bound, hence per-searcher) and the pools
  // their per-call inference caches are leased from.
  std::optional<CosinePosterior> cos_model;
  std::optional<JaccardPosterior> jac_model;
  std::optional<BbitMinwisePosterior> bbit_model;
  std::optional<EuclideanPosterior> euc_model;
  mutable CachePool<CosinePosterior> cos_pool;
  mutable CachePool<JaccardPosterior> jac_pool;
  mutable CachePool<BbitMinwisePosterior> bbit_pool;
  mutable CachePool<EuclideanPosterior> euc_pool;

  // Worker pool (num_threads > 1 only). pool_mu_ grants exclusive use of
  // it: QueryBatch holds it for the batch, a single Query() try-locks it
  // for within-query sharding and verifies sequentially when it is busy.
  std::unique_ptr<ThreadPool> pool;
  mutable std::mutex pool_mu_;

  // Banding buckets: owned for a fresh build, borrowed from the persistent
  // index for a warm start (the index outlives the searcher).
  BandingIndex banding_storage;
  const BandingIndex* banding = nullptr;

  // Resolved BayesLSH params.
  BayesLshParams bayes;

  // Per-candidate hash budget of the serving paths.
  uint32_t ServeBudget() const {
    return cfg.exact_verification ? lite_h : bayes.max_hashes;
  }

  // Resolves parameters, models, cache pools, hashers, empty stores and
  // the worker pool — everything except the banding buckets, which the two
  // constructors provide differently.
  void Init(const Dataset* d, const QuerySearchConfig& config);

  // Candidate ids from the buckets the query falls into (sorted, unique).
  std::vector<uint32_t> CollectCandidates(const SparseVectorView& q) const;

  // Exact score of collection row vs the query on the measure's score axis
  // (negated distance for Euclidean; compare against score_threshold).
  double ExactSim(uint32_t row, const SparseVectorView& q) const {
    const SparseVectorView x = data->Row(row);
    switch (cfg.measure) {
      case Measure::kCosine:
        return SparseDot(x, q);  // Query must be pre-normalized.
      case Measure::kJaccard:
        return JaccardSimilarity(x, q);
      case Measure::kBinaryCosine:
        return BinaryCosineSimilarity(x, q);
      case Measure::kWeightedJaccard:
        return WeightedJaccardSimilarity(x, q);
      case Measure::kKernelCosine:
        return KernelCosine(*kernel, x, q);
      case Measure::kEuclidean:
        return -SparseEuclideanDistance(x, q);
    }
    return 0.0;
  }

  // One query's hash stream over the engaged bit store: chunk index -> 64
  // packed bits, from the generation or verification family. For KLSH the
  // anchor kernel row is computed once here and reused by every chunk (the
  // chunk hasher's external-vector fallback would redo the p kernel
  // evaluations per chunk).
  std::function<uint64_t(uint32_t)> QueryBitChunks(const SparseVectorView& q,
                                                   bool generation) const {
    if (cfg.measure == Measure::kKernelCosine) {
      const KlshHasher* h = generation ? gen_klsh.get() : verify_klsh.get();
      auto krow = std::make_shared<const std::vector<double>>(
          h->AnchorKernelRow(q));
      return [h, krow = std::move(krow)](uint32_t chunk) {
        return h->HashChunk(*krow, chunk);
      };
    }
    const WordChunkHasher* h =
        generation ? gen_bits_hasher.get() : &bits->hasher();
    return [h, q](uint32_t chunk) {
      return h->HashChunk(q, kNoStoreRow, chunk);
    };
  }

  // Int-store counterpart: writes the family's chunk_ints() values per
  // chunk (16 minwise/ICWS, 64 p-stable).
  std::function<void(uint32_t, uint32_t*)> QueryIntChunks(
      const SparseVectorView& q, bool generation) const {
    const IntChunkHasher* h =
        generation ? gen_ints_hasher.get() : &ints->hasher();
    return [h, q](uint32_t chunk, uint32_t* out) {
      h->HashChunk(q, kNoStoreRow, chunk, out);
    };
  }

  // --- verification of one candidate against the current query ---
  // Returns true with the similarity in *sim if the candidate is kept.
  // `cache` is the caller's leased inference cache for the active measure.
  template <typename Cache, typename EnsureQuery, typename MatchRange>
  bool VerifyCandidate(uint32_t row, const SparseVectorView& q,
                       const EnsureQuery& ensure_query,
                       const MatchRange& match_range, Cache& cache,
                       QueryStats* stats, double* sim) const {
    const uint32_t kk = bayes.hashes_per_round;
    const uint32_t budget = ServeBudget();
    uint32_t m = 0, n = 0;
    while (n < budget) {
      ensure_query(n + kk);
      m += match_range(row, n, n + kk);
      n += kk;
      if (stats != nullptr) stats->hashes_compared += kk;
      if (m < cache.MinMatches(n)) {
        if (stats != nullptr) ++stats->pruned;
        return false;
      }
      if (!cfg.exact_verification) {
        const auto er = cache.EstimateAt(m, n);
        if (er.concentrated) {
          *sim = er.estimate;
          return true;
        }
      }
    }
    if (cfg.exact_verification) {
      const double s = ExactSim(row, q);
      if (s >= score_threshold) {
        *sim = s;
        return true;
      }
      return false;
    }
    // Estimation mode, budget exhausted: forced accept (cf. Algorithm 1).
    // (Unreachable for Euclidean — exact verification is forced — but the
    // dispatch stays total: the MAP distance estimate, negated.)
    const int mi = static_cast<int>(m), ni = static_cast<int>(n);
    if (CosineLike(cfg.measure)) {
      *sim = cos_model->Estimate(mi, ni);
    } else if (bbit_model.has_value()) {
      *sim = bbit_model->Estimate(mi, ni);
    } else if (euc_model.has_value()) {
      *sim = -euc_model->Estimate(mi, ni);
    } else {
      *sim = jac_model->Estimate(mi, ni);
    }
    return true;
  }

  // Default block width for batched posterior evaluation (see
  // QuerySearchConfig::posterior_batch).
  static constexpr uint32_t kDefaultPosteriorBatch = 8;

  // --- blocked verification (posterior_batch != 1) ---
  // Drives a block of candidates round-by-round, pushing every survivor's
  // posterior update through one InferenceCache::EstimateAtBatch call per
  // round. Each candidate's (m, n) trajectory — and therefore its prune /
  // accept decision, similarity, and stats contribution — is exactly the
  // one VerifyCandidate computes; only the cache-call grouping changes
  // (the memo is order-invariant, so hit/miss tallies also agree).
  // Accepted candidates are appended in candidate order, so the output is
  // identical to the serial loop even before the caller's similarity sort
  // (tests/batched_posterior_test.cc).
  template <typename Cache, typename EnsureQuery, typename MatchRange>
  void VerifyBlocked(const SparseVectorView& q,
                     std::span<const uint32_t> candidates,
                     const EnsureQuery& ensure_query,
                     const MatchRange& match_range, Cache& cache,
                     QueryStats* stats, std::vector<QueryMatch>* out) const {
    const uint32_t kk = bayes.hashes_per_round;
    const uint32_t budget = ServeBudget();
    const uint32_t block = cfg.posterior_batch == 0 ? kDefaultPosteriorBatch
                                                    : cfg.posterior_batch;
    struct Slot {
      uint32_t row = 0;
      uint32_t m = 0;
      double sim = 0.0;
      bool done = false;
      bool accepted = false;
    };
    std::vector<Slot> slots;
    std::vector<uint32_t> ms;   // Survivor match counts, gathered per round.
    std::vector<uint32_t> idx;  // Slot index behind each ms entry.
    std::vector<typename Cache::EstimateResult> res;
    for (size_t base = 0; base < candidates.size(); base += block) {
      const auto bsz = static_cast<uint32_t>(
          std::min<size_t>(block, candidates.size() - base));
      slots.assign(bsz, Slot{});
      for (uint32_t i = 0; i < bsz; ++i) slots[i].row = candidates[base + i];
      uint32_t active = bsz;
      uint32_t n = 0;
      while (active > 0 && n < budget) {
        ensure_query(n + kk);
        for (auto& s : slots) {
          if (s.done) continue;
          s.m += match_range(s.row, n, n + kk);
          if (stats != nullptr) stats->hashes_compared += kk;
        }
        n += kk;
        const uint32_t min_m = cache.MinMatches(n);
        ms.clear();
        idx.clear();
        for (uint32_t i = 0; i < bsz; ++i) {
          auto& s = slots[i];
          if (s.done) continue;
          if (s.m < min_m) {
            s.done = true;
            --active;
            if (stats != nullptr) ++stats->pruned;
            continue;
          }
          if (!cfg.exact_verification) {
            ms.push_back(s.m);
            idx.push_back(i);
          }
        }
        if (!ms.empty()) {
          res.resize(ms.size());
          cache.EstimateAtBatch(ms.data(), static_cast<uint32_t>(ms.size()),
                                n, res.data());
          for (size_t j = 0; j < ms.size(); ++j) {
            if (!res[j].concentrated) continue;
            auto& s = slots[idx[j]];
            s.done = true;
            s.accepted = true;
            s.sim = res[j].estimate;
            --active;
          }
        }
      }
      // Budget exhausted: the still-undecided slots all saw n hashes.
      for (auto& s : slots) {
        if (s.done) continue;
        if (cfg.exact_verification) {
          const double sim = ExactSim(s.row, q);
          if (sim >= score_threshold) {
            s.accepted = true;
            s.sim = sim;
          }
          continue;
        }
        // Forced accept (cf. Algorithm 1), as in VerifyCandidate.
        const int mi = static_cast<int>(s.m), ni = static_cast<int>(n);
        if (CosineLike(cfg.measure)) {
          s.sim = cos_model->Estimate(mi, ni);
        } else if (bbit_model.has_value()) {
          s.sim = bbit_model->Estimate(mi, ni);
        } else if (euc_model.has_value()) {
          s.sim = -euc_model->Estimate(mi, ni);
        } else {
          s.sim = jac_model->Estimate(mi, ni);
        }
        s.accepted = true;
      }
      for (const auto& s : slots) {
        if (s.accepted) out->push_back({s.row, s.sim});
      }
    }
  }

  // --- serial verification paths (one per store kind) ---
  // Used by the serial Query() fallback and by QueryBatch workers. Safe
  // for concurrent callers: every row access goes through the store's
  // MatchAgainstQuery (lock-free once frozen). posterior_batch != 1 routes
  // through VerifyBlocked above; 1 keeps the per-candidate loop.
  // Bit-store serial verification (SRP cosine, binary cosine, KLSH — all
  // through the cosine posterior).
  void VerifyBitsSerial(const SparseVectorView& q,
                        std::span<const uint32_t> candidates,
                        InferenceCache<CosinePosterior>& cache,
                        QueryStats* stats,
                        std::vector<QueryMatch>* out) const {
    const auto hash_chunk = QueryBitChunks(q, /*generation=*/false);
    std::vector<uint64_t> qbits;
    auto hash_query_to = [&](uint32_t n_bits) {
      while (qbits.size() < WordsForBits(n_bits)) {
        qbits.push_back(hash_chunk(static_cast<uint32_t>(qbits.size())));
      }
    };
    auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
      return bits->MatchAgainstQuery(row, qbits.data(), from, to);
    };
    if (cfg.posterior_batch != 1) {
      VerifyBlocked(q, candidates, hash_query_to, match_range, cache, stats,
                    out);
      return;
    }
    for (uint32_t row : candidates) {
      double sim = 0.0;
      if (VerifyCandidate(row, q, hash_query_to, match_range, cache, stats,
                          &sim)) {
        out->push_back({row, sim});
      }
    }
  }

  // Int-store serial verification (minwise Jaccard, ICWS weighted Jaccard,
  // p-stable Euclidean). Cache is the leased inference cache of whichever
  // posterior model the measure verifies through.
  template <typename Cache>
  void VerifyIntsSerial(const SparseVectorView& q,
                        std::span<const uint32_t> candidates, Cache& cache,
                        QueryStats* stats,
                        std::vector<QueryMatch>* out) const {
    const uint32_t chunk_ints = ints->hasher().chunk_ints();
    const auto hash_chunk = QueryIntChunks(q, /*generation=*/false);
    std::vector<uint32_t> qints;
    auto hash_query_to = [&](uint32_t n_hashes) {
      while (qints.size() < n_hashes) {
        const auto chunk = static_cast<uint32_t>(qints.size()) / chunk_ints;
        qints.resize(qints.size() + chunk_ints);
        hash_chunk(chunk, qints.data() + chunk * chunk_ints);
      }
    };
    auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
      return ints->MatchAgainstQuery(row, qints.data(), from, to);
    };
    if (cfg.posterior_batch != 1) {
      VerifyBlocked(q, candidates, hash_query_to, match_range, cache, stats,
                    out);
      return;
    }
    for (uint32_t row : candidates) {
      double sim = 0.0;
      if (VerifyCandidate(row, q, hash_query_to, match_range, cache, stats,
                          &sim)) {
        out->push_back({row, sim});
      }
    }
  }

  // b-bit minwise verification: hash the query with the full-width minwise
  // hasher, pack the low b bits into the store's group layout, and compare
  // word-parallel against the collection rows.
  void VerifyBbitSerial(const SparseVectorView& q,
                        std::span<const uint32_t> candidates,
                        InferenceCache<BbitMinwisePosterior>& cache,
                        QueryStats* stats,
                        std::vector<QueryMatch>* out) const {
    const uint32_t b = bbits->bits_per_hash();
    const uint32_t values_per_word = 64 / b;
    std::vector<uint32_t> qints;
    std::vector<uint64_t> qwords;
    auto hash_query_to = [&](uint32_t n_hashes) {
      const uint32_t have = static_cast<uint32_t>(qints.size());
      if (n_hashes <= have) return;
      const uint32_t want = (n_hashes + kMinhashChunkInts - 1) /
                            kMinhashChunkInts * kMinhashChunkInts;
      qints.resize(want);
      for (uint32_t c = have / kMinhashChunkInts; c < want / kMinhashChunkInts;
           ++c) {
        verify_minhash->HashChunk(q, c,
                                  qints.data() + c * kMinhashChunkInts);
      }
      qwords.resize((want + values_per_word - 1) / values_per_word, 0);
      PackBbitValues(qints.data() + have, have, want, b, qwords.data());
    };
    auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
      return bbits->MatchAgainstQuery(row, qwords.data(), from, to);
    };
    if (cfg.posterior_batch != 1) {
      VerifyBlocked(q, candidates, hash_query_to, match_range, cache, stats,
                    out);
      return;
    }
    for (uint32_t row : candidates) {
      double sim = 0.0;
      if (VerifyCandidate(row, q, hash_query_to, match_range, cache, stats,
                          &sim)) {
        out->push_back({row, sim});
      }
    }
  }

  // --- within-query sharded paths (caller must hold pool_mu_) ---
  // The query signature is hashed to the full budget up front (shared
  // read-only), candidate rows are prefetched to one chunk, and each
  // worker runs the same per-candidate loop with its leased inference
  // cache and a private overflow store. The caller's final similarity
  // sort makes the output independent of the thread count. On a frozen
  // store the whole path is read-only: the growth lock is a no-op, the
  // prefetch is skipped, and overflow shards never materialize rows.
  void VerifyBitsSharded(const SparseVectorView& q,
                         std::span<const uint32_t> candidates,
                         const CacheLease<CosinePosterior>& caches,
                         QueryStats* stats,
                         std::vector<QueryMatch>* out) const {
    ThreadPool* p = pool.get();
    const uint32_t kk = bayes.hashes_per_round;
    const auto hash_chunk = QueryBitChunks(q, /*generation=*/false);
    std::vector<uint64_t> qbits(WordsForBits(ServeBudget()));
    for (uint32_t c = 0; c < qbits.size(); ++c) {
      qbits[c] = hash_chunk(c);
    }

    auto growth_lock = bits->GrowthLock();
    if (!bits->frozen()) {
      const uint32_t horizon =
          (kk + kBitsPerWord - 1) / kBitsPerWord * kBitsPerWord;
      bits->AddBitsComputed(ParallelReduce(
          p, candidates.size(), uint64_t{0},
          [&](uint32_t, uint64_t b, uint64_t e) {
            uint64_t work = 0;
            for (uint64_t i = b; i < e; ++i) {
              work += bits->EnsureBitsUncounted(candidates[i], horizon);
            }
            return work;
          },
          [](uint64_t x, uint64_t y) { return x + y; }));
    }

    struct Shard {
      std::vector<QueryMatch> out;
      QueryStats stats;
      std::optional<BitOverflowShard> overflow;
    };
    std::vector<Shard> shards(p->num_threads());
    p->RunShards(candidates.size(), [&](uint32_t s, uint64_t begin,
                                        uint64_t end) {
      Shard& sh = shards[s];
      BitOverflowShard& overflow = sh.overflow.emplace(&*bits);
      auto no_ensure = [](uint32_t) {};
      auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
        return MatchingBits(qbits.data(), overflow.RowWords(row, to), from,
                            to);
      };
      for (uint64_t i = begin; i < end; ++i) {
        double sim = 0.0;
        if (VerifyCandidate(candidates[i], q, no_ensure, match_range,
                            caches[s], &sh.stats, &sim)) {
          sh.out.push_back({candidates[i], sim});
        }
      }
    });
    uint64_t overflow_total = 0;
    for (Shard& sh : shards) {
      out->insert(out->end(), sh.out.begin(), sh.out.end());
      if (stats != nullptr) {
        stats->pruned += sh.stats.pruned;
        stats->hashes_compared += sh.stats.hashes_compared;
      }
      if (sh.overflow.has_value()) {
        overflow_total += sh.overflow->computed();
        // Fold beyond-horizon signatures back into the persistent store
        // so later queries reuse them (the hashing is already counted).
        sh.overflow->MergeInto(&*bits);
      }
    }
    bits->AddBitsComputed(overflow_total);
  }

  template <typename Model>
  void VerifyIntsSharded(const SparseVectorView& q,
                         std::span<const uint32_t> candidates,
                         const CacheLease<Model>& caches, QueryStats* stats,
                         std::vector<QueryMatch>* out) const {
    ThreadPool* p = pool.get();
    const uint32_t kk = bayes.hashes_per_round;
    const uint32_t chunk_ints = ints->hasher().chunk_ints();
    const auto hash_chunk = QueryIntChunks(q, /*generation=*/false);
    const uint32_t chunks = (ServeBudget() + chunk_ints - 1) / chunk_ints;
    std::vector<uint32_t> qints(chunks * chunk_ints);
    for (uint32_t c = 0; c < chunks; ++c) {
      hash_chunk(c, qints.data() + c * chunk_ints);
    }

    auto growth_lock = ints->GrowthLock();
    if (!ints->frozen()) {
      const uint32_t horizon =
          (kk + chunk_ints - 1) / chunk_ints * chunk_ints;
      ints->AddHashesComputed(ParallelReduce(
          p, candidates.size(), uint64_t{0},
          [&](uint32_t, uint64_t b, uint64_t e) {
            uint64_t work = 0;
            for (uint64_t i = b; i < e; ++i) {
              work += ints->EnsureHashesUncounted(candidates[i], horizon);
            }
            return work;
          },
          [](uint64_t x, uint64_t y) { return x + y; }));
    }

    struct Shard {
      std::vector<QueryMatch> out;
      QueryStats stats;
      std::optional<IntOverflowShard> overflow;
    };
    std::vector<Shard> shards(p->num_threads());
    p->RunShards(candidates.size(), [&](uint32_t s, uint64_t begin,
                                        uint64_t end) {
      Shard& sh = shards[s];
      IntOverflowShard& overflow = sh.overflow.emplace(&*ints);
      auto no_ensure = [](uint32_t) {};
      auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
        const uint32_t* h = overflow.RowHashes(row, to);
        uint32_t m = 0;
        for (uint32_t i = from; i < to; ++i) m += (h[i] == qints[i]);
        return m;
      };
      for (uint64_t i = begin; i < end; ++i) {
        double sim = 0.0;
        if (VerifyCandidate(candidates[i], q, no_ensure, match_range,
                            caches[s], &sh.stats, &sim)) {
          sh.out.push_back({candidates[i], sim});
        }
      }
    });
    uint64_t overflow_total = 0;
    for (Shard& sh : shards) {
      out->insert(out->end(), sh.out.begin(), sh.out.end());
      if (stats != nullptr) {
        stats->pruned += sh.stats.pruned;
        stats->hashes_compared += sh.stats.hashes_compared;
      }
      if (sh.overflow.has_value()) {
        overflow_total += sh.overflow->computed();
        // Fold beyond-horizon signatures back into the persistent store
        // so later queries reuse them (the hashing is already counted).
        sh.overflow->MergeInto(&*ints);
      }
    }
    ints->AddHashesComputed(overflow_total);
  }
};

void QuerySearcher::Impl::Init(const Dataset* d,
                               const QuerySearchConfig& config) {
  assert(d != nullptr);
  data = d;
  cfg = config;

  const bool cosine = CosineLike(config.measure);
  const bool euclidean = config.measure == Measure::kEuclidean;
  if (config.bbit != 0 && (config.measure != Measure::kJaccard ||
                           !IsValidBbitWidth(config.bbit))) {
    throw std::invalid_argument(
        "QuerySearchConfig: bbit requires the Jaccard measure and a "
        "power-of-two width in [1, 32]");
  }
  if (euclidean && !(config.threshold > 0.0)) {
    throw std::invalid_argument(
        "QuerySearchConfig: the Euclidean threshold is a radius and must "
        "be > 0");
  }
  // Euclidean serving always verifies survivors exactly: the posterior
  // estimates collision rates, not distances, and the contract is "rows
  // within the radius" (query_search.h). Forced before ServeBudget() is
  // read so the cache budget is the lite budget.
  if (euclidean) cfg.exact_verification = true;
  score_threshold = euclidean ? -config.threshold : config.threshold;
  bayes = config.bayes;
  if (bayes.hashes_per_round == 0) {
    bayes.hashes_per_round = cosine || euclidean ? 32 : 16;
  }
  if (bayes.max_hashes == 0) bayes.max_hashes = cosine ? 4096 : 512;
  bayes.max_hashes -= bayes.max_hashes % bayes.hashes_per_round;
  lite_h = config.lite_max_hashes != 0
               ? config.lite_max_hashes
               : (cosine || euclidean ? 128u : 64u);
  lite_h -= lite_h % bayes.hashes_per_round;
  if (lite_h == 0) lite_h = bayes.hashes_per_round;

  // Banding shape (the warm-start constructor overrides it with the
  // index's recorded shape).
  const BandingShape shape =
      ResolveBandingShape(config.measure, config.threshold, config.banding);
  k = shape.hashes_per_band;
  l = shape.num_bands;

  const uint64_t gen_seed = GenerationSeed(config.seed);
  const uint64_t verify_seed = VerificationSeed(config.seed);

  const uint32_t num_threads = ResolveNumThreads(config.num_threads);
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  const uint32_t cache_budget = ServeBudget();

  // Models, cache pools, hash families and the matching empty store —
  // one arm per measure (plus the Jaccard bbit split).
  switch (config.measure) {
    case Measure::kCosine:
    case Measure::kBinaryCosine: {
      cos_model.emplace(config.threshold);
      cos_pool.Configure(&*cos_model, bayes.hashes_per_round, cache_budget,
                         bayes.epsilon, bayes.delta, bayes.gamma);
      gen_gauss = std::make_shared<ImplicitGaussianSource>(gen_seed);
      verify_gauss = std::make_shared<ImplicitGaussianSource>(verify_seed);
      gen_bits_hasher =
          std::make_shared<SrpChunkHasher>(SrpHasher(gen_gauss.get()));
      bits.emplace(d, std::make_shared<SrpChunkHasher>(
                          SrpHasher(verify_gauss.get())));
      break;
    }
    case Measure::kKernelCosine: {
      cos_model.emplace(config.threshold);
      cos_pool.Configure(&*cos_model, bayes.hashes_per_round, cache_budget,
                         bayes.epsilon, bayes.delta, bayes.gamma);
      kernel = MakeKernel(config.kernel);
      klsh_cache = std::make_shared<KlshRowCache>();
      // Both hash streams see the SAME anchors (sampled once with the
      // master seed — never the derived stream seeds — so every serving
      // component agrees); only kp.seed differs between the streams.
      KlshParams kp = config.klsh;
      Dataset gen_anchors =
          config.klsh_anchors != nullptr
              ? *config.klsh_anchors
              : SampleKlshAnchors(
                    *d, std::min(kp.num_anchors, d->num_vectors()),
                    config.seed);
      Dataset verify_anchors = gen_anchors;
      kp.seed = gen_seed;
      gen_klsh = std::shared_ptr<const KlshHasher>(new KlshHasher(
          KlshHasher::FromAnchors(std::move(gen_anchors), kernel.get(),
                                  kp)));
      kp.seed = verify_seed;
      verify_klsh = std::shared_ptr<const KlshHasher>(new KlshHasher(
          KlshHasher::FromAnchors(std::move(verify_anchors), kernel.get(),
                                  kp)));
      gen_bits_hasher =
          std::make_shared<KlshChunkHasher>(gen_klsh, klsh_cache, d);
      bits.emplace(d, std::make_shared<KlshChunkHasher>(verify_klsh,
                                                        klsh_cache, d));
      break;
    }
    case Measure::kJaccard: {
      if (config.bbit != 0) {
        bbit_model.emplace(config.threshold, config.bbit);
        bbit_pool.Configure(&*bbit_model, bayes.hashes_per_round,
                            cache_budget, bayes.epsilon, bayes.delta,
                            bayes.gamma);
        gen_ints_hasher = std::make_shared<MinwiseChunkHasher>(
            MinwiseHasher(gen_seed));
        verify_minhash.emplace(verify_seed);
        bbits.emplace(d, MinwiseHasher(verify_seed), config.bbit);
        break;
      }
      jac_model.emplace(config.threshold);  // Uniform prior in query mode.
      jac_pool.Configure(&*jac_model, bayes.hashes_per_round, cache_budget,
                         bayes.epsilon, bayes.delta, bayes.gamma);
      gen_ints_hasher =
          std::make_shared<MinwiseChunkHasher>(MinwiseHasher(gen_seed));
      ints.emplace(d, std::make_shared<MinwiseChunkHasher>(
                          MinwiseHasher(verify_seed)));
      break;
    }
    case Measure::kWeightedJaccard: {
      // ICWS collisions obey Pr[h(x) = h(y)] = J_w(x, y) — the minwise
      // law — so the Jaccard posterior verifies weighted Jaccard as-is.
      jac_model.emplace(config.threshold);
      jac_pool.Configure(&*jac_model, bayes.hashes_per_round, cache_budget,
                         bayes.epsilon, bayes.delta, bayes.gamma);
      gen_ints_hasher =
          std::make_shared<IcwsChunkHasher>(IcwsHasher(gen_seed));
      ints.emplace(d, std::make_shared<IcwsChunkHasher>(
                          IcwsHasher(verify_seed)));
      break;
    }
    case Measure::kEuclidean: {
      // Serving-stack width convention w = 2 * radius — the same one
      // ResolveBandingShape assumed above, making the collision
      // probability at the radius a scale-free constant.
      const double width = 2.0 * config.threshold;
      euc_model.emplace(
          EuclideanPosterior::MakeForRadius(config.threshold, width));
      euc_pool.Configure(&*euc_model, bayes.hashes_per_round, cache_budget,
                         bayes.epsilon, bayes.delta, bayes.gamma);
      gen_ints_hasher = std::make_shared<PstableChunkHasher>(
          PstableHasher(gen_seed, width));
      ints.emplace(d, std::make_shared<PstableChunkHasher>(
                          PstableHasher(verify_seed, width)));
      break;
    }
  }
}

std::vector<uint32_t> QuerySearcher::Impl::CollectCandidates(
    const SparseVectorView& q) const {
  std::vector<uint32_t> candidates;
  if (gen_bits_hasher != nullptr) {
    const auto hash_chunk = QueryBitChunks(q, /*generation=*/true);
    std::vector<uint64_t> qwords(WordsForBits(l * k));
    for (uint32_t c = 0; c < qwords.size(); ++c) {
      qwords[c] = hash_chunk(c);
    }
    for (uint32_t band = 0; band < l; ++band) {
      const auto* bucket = banding->Find(
          band, BandingIndex::CosineKey(
                    qwords.data(), static_cast<uint32_t>(qwords.size()), band,
                    k));
      if (bucket == nullptr) continue;
      candidates.insert(candidates.end(), bucket->begin(), bucket->end());
    }
  } else {
    const uint32_t chunk_ints = gen_ints_hasher->chunk_ints();
    const auto hash_chunk = QueryIntChunks(q, /*generation=*/true);
    const uint32_t chunks = (l * k + chunk_ints - 1) / chunk_ints;
    std::vector<uint32_t> qints(chunks * chunk_ints);
    for (uint32_t c = 0; c < chunks; ++c) {
      hash_chunk(c, qints.data() + c * chunk_ints);
    }
    for (uint32_t band = 0; band < l; ++band) {
      const auto* bucket = banding->Find(
          band, BandingIndex::JaccardKey(qints.data(), band, k));
      if (bucket == nullptr) continue;
      candidates.insert(candidates.end(), bucket->begin(), bucket->end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

QuerySearcher::QuerySearcher(const Dataset* data,
                             const QuerySearchConfig& config)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.Init(data, config);

  // Build the banding buckets over the collection with the generation-seed
  // hash family (a separate, throwaway store: banding hashes are not
  // reused for verification; see DESIGN.md §6). Deterministic for any
  // thread count — see candgen/banding_index.h.
  if (im.gen_bits_hasher != nullptr) {
    im.banding_storage = BandingIndex::BuildBits(
        *data, im.gen_bits_hasher, im.k, im.l, im.pool.get());
  } else {
    im.banding_storage = BandingIndex::BuildInts(
        *data, im.gen_ints_hasher, im.k, im.l, im.pool.get());
  }
  im.banding = &im.banding_storage;
  num_bands_ = im.l;
  hashes_per_band_ = im.k;
}

QuerySearcher::QuerySearcher(const PersistentIndex* index,
                             const QuerySearchConfig& config)
    : impl_(std::make_unique<Impl>()) {
  assert(index != nullptr);
  if (config.measure != index->measure()) {
    throw IndexError("QuerySearcher: config measure does not match the "
                     "index");
  }
  if (config.seed != index->seed()) {
    throw IndexError("QuerySearcher: config seed does not match the index "
                     "(loaded signatures would disagree with query hashes)");
  }
  if (config.bbit != index->bbit()) {
    throw IndexError("QuerySearcher: config bbit width does not match the "
                     "index");
  }
  if ((config.banding.hashes_per_band != 0 &&
       config.banding.hashes_per_band != index->hashes_per_band()) ||
      (config.banding.num_bands != 0 &&
       config.banding.num_bands != index->num_bands())) {
    throw IndexError("QuerySearcher: explicit banding shape does not match "
                     "the index");
  }

  Impl& im = *impl_;
  // The KLSH hash family is defined by the anchors the index was built
  // with — adopt the index's kernel spec, family shape and anchor rows so
  // warm-served signatures agree bit-for-bit with the loaded store.
  QuerySearchConfig cfg2 = config;
  if (index->measure() == Measure::kKernelCosine) {
    cfg2.kernel = index->kernel_spec();
    cfg2.klsh = index->klsh_params();
    cfg2.klsh_anchors = index->klsh_anchors();
  }
  im.Init(&index->data(), cfg2);
  // Serve from the index's recorded shape and buckets; adopt its
  // prefetched verification signatures (copies — many searchers can share
  // one loaded index).
  im.k = index->hashes_per_band();
  im.l = index->num_bands();
  im.banding = &index->banding();
  if (im.bits.has_value() && index->bit_store() != nullptr) {
    im.bits->CopyRowsFrom(*index->bit_store());
  } else if (im.ints.has_value() && index->int_store() != nullptr) {
    im.ints->CopyRowsFrom(*index->int_store());
  } else if (im.bbits.has_value() && index->bbit_store() != nullptr) {
    im.bbits->CopyRowsFrom(*index->bbit_store());
  }
  num_bands_ = im.l;
  hashes_per_band_ = im.k;
}

QuerySearcher::~QuerySearcher() = default;

void QuerySearcher::Freeze() {
  Impl& im = *impl_;
  ThreadPool* pool = im.pool.get();
  const uint32_t budget = im.ServeBudget();
  if (im.bits.has_value()) {
    if (im.bits->frozen()) return;
    im.bits->AddBitsComputed(
        PrefetchAllRows(im.bits->num_rows(), pool, [&](uint32_t row) {
          return im.bits->EnsureBitsUncounted(row, budget);
        }));
    im.bits->Freeze();
  } else if (im.ints.has_value()) {
    if (im.ints->frozen()) return;
    im.ints->AddHashesComputed(
        PrefetchAllRows(im.ints->num_rows(), pool, [&](uint32_t row) {
          return im.ints->EnsureHashesUncounted(row, budget);
        }));
    im.ints->Freeze();
  } else {
    if (im.bbits->frozen()) return;
    im.bbits->AddHashesComputed(
        PrefetchAllRows(im.bbits->num_rows(), pool, [&](uint32_t row) {
          return im.bbits->EnsureHashesUncounted(row, budget);
        }));
    im.bbits->Freeze();
  }
}

void QuerySearcher::SyncAppendedRows() {
  Impl& im = *impl_;
  if (im.banding != &im.banding_storage) {
    throw std::logic_error(
        "QuerySearcher: cannot grow a searcher serving a borrowed "
        "(persistent-index) banding table");
  }
  if (frozen()) {
    throw std::logic_error("QuerySearcher: cannot grow a frozen searcher");
  }
  const uint32_t n_data = im.data->num_vectors();
  const uint32_t n_store = im.bits.has_value()   ? im.bits->num_rows()
                           : im.ints.has_value() ? im.ints->num_rows()
                                                 : im.bbits->num_rows();
  assert(n_store <= n_data);
  for (uint32_t row = n_store; row < n_data; ++row) {
    if (im.bits.has_value()) {
      im.bits->AppendRow();
    } else if (im.ints.has_value()) {
      im.ints->AppendRow();
    } else {
      im.bbits->AppendRow();
    }
    if (im.gen_bits_hasher != nullptr) {
      im.banding_storage.InsertBits(im.data->Row(row), row,
                                    *im.gen_bits_hasher);
    } else {
      im.banding_storage.InsertInts(im.data->Row(row), row,
                                    *im.gen_ints_hasher);
    }
  }
}

bool QuerySearcher::frozen() const {
  const Impl& im = *impl_;
  if (im.bits.has_value()) return im.bits->frozen();
  if (im.ints.has_value()) return im.ints->frozen();
  return im.bbits->frozen();
}

uint64_t QuerySearcher::bits_computed() const {
  const Impl& im = *impl_;
  return im.bits.has_value() ? im.bits->bits_computed() : 0;
}

uint64_t QuerySearcher::hashes_computed() const {
  const Impl& im = *impl_;
  if (im.ints.has_value()) return im.ints->hashes_computed();
  if (im.bbits.has_value()) return im.bbits->hashes_computed();
  return 0;
}

std::vector<QueryMatch> QuerySearcher::Query(const SparseVectorView& q,
                                             QueryStats* stats) const {
  Impl& im = *impl_;
  // threads_used starts at the serial answer; only the sharded branch
  // below overwrites it — so a busy-pool try-lock fallback reports the
  // truth, not the configured thread count.
  if (stats != nullptr) *stats = QueryStats{.threads_used = 1};
  std::vector<QueryMatch> out;
  if (q.empty()) return out;

  // 1. Collect candidates from the buckets the query falls into.
  const std::vector<uint32_t> candidates = im.CollectCandidates(q);
  if (stats != nullptr) stats->candidates = candidates.size();

  // 2. Verify each candidate with incremental Bayesian pruning, using
  //    verification-seed hashes (independent of the banding hashes).
  //
  // With a pool, enough candidates, and no batch in flight, verification
  // shards over the candidate list. b-bit verification always runs the
  // serial loop (no overflow-shard protocol). Every path produces
  // identical results, so a busy pool degrades to sequential instead of
  // blocking.
  ThreadPool* pool = im.pool.get();
  const bool want_sharded =
      pool != nullptr && !im.bbits.has_value() &&
      candidates.size() >= kMinQueryCandidatesPerShard * pool->num_threads();
  std::unique_lock<std::mutex> pool_lock(im.pool_mu_, std::defer_lock);
  if (want_sharded && pool_lock.try_lock()) {
    if (stats != nullptr) stats->threads_used = pool->num_threads();
    if (im.bits.has_value()) {
      const CacheLease<CosinePosterior> caches(&im.cos_pool,
                                               pool->num_threads());
      im.VerifyBitsSharded(q, candidates, caches, stats, &out);
    } else if (im.euc_model.has_value()) {
      const CacheLease<EuclideanPosterior> caches(&im.euc_pool,
                                                  pool->num_threads());
      im.VerifyIntsSharded(q, candidates, caches, stats, &out);
    } else {
      const CacheLease<JaccardPosterior> caches(&im.jac_pool,
                                                pool->num_threads());
      im.VerifyIntsSharded(q, candidates, caches, stats, &out);
    }
  } else if (im.bits.has_value()) {
    const CacheLease<CosinePosterior> cache(&im.cos_pool, 1);
    im.VerifyBitsSerial(q, candidates, cache[0], stats, &out);
  } else if (im.bbits.has_value()) {
    const CacheLease<BbitMinwisePosterior> cache(&im.bbit_pool, 1);
    im.VerifyBbitSerial(q, candidates, cache[0], stats, &out);
  } else if (im.euc_model.has_value()) {
    const CacheLease<EuclideanPosterior> cache(&im.euc_pool, 1);
    im.VerifyIntsSerial(q, candidates, cache[0], stats, &out);
  } else {
    const CacheLease<JaccardPosterior> cache(&im.jac_pool, 1);
    im.VerifyIntsSerial(q, candidates, cache[0], stats, &out);
  }

  SortMatches(&out);
  return out;
}

std::vector<std::vector<QueryMatch>> QuerySearcher::QueryBatch(
    std::span<const SparseVectorView> queries, QueryStats* stats,
    uint32_t top_k) const {
  Impl& im = *impl_;
  if (stats != nullptr) *stats = QueryStats{.threads_used = 1};
  std::vector<std::vector<QueryMatch>> results(queries.size());
  if (queries.empty()) return results;

  ThreadPool* pool = im.pool.get();
  const uint32_t workers = pool != nullptr ? pool->num_threads() : 1;
  // A batch waits for exclusive use of the pool rather than degrading, so
  // (unlike Query's try-lock fallback) the worker count is the thread
  // count actually used.
  if (stats != nullptr) stats->threads_used = workers;
  std::vector<QueryStats> worker_stats(workers);

  // Runs serve_one(worker, i) for every query index i: sharded over
  // queries with exclusive use of the pool, or inline without one.
  // Workers write only their own slots of `results`/`worker_stats`, so
  // the merged output is deterministic for any thread count.
  auto run = [&](const auto& serve_one) {
    if (pool == nullptr) {
      for (uint64_t i = 0; i < queries.size(); ++i) serve_one(0u, i);
      return;
    }
    std::lock_guard<std::mutex> lock(im.pool_mu_);
    pool->RunShards(queries.size(), [&](uint32_t s, uint64_t b, uint64_t e) {
      for (uint64_t i = b; i < e; ++i) serve_one(s, i);
    });
  };

  auto finish_query = [&](uint32_t w, uint64_t i, const QueryStats& qs) {
    SortMatches(&results[i]);
    if (top_k != 0 && results[i].size() > top_k) results[i].resize(top_k);
    MergeStats(qs, &worker_stats[w]);
  };

  if (im.bits.has_value()) {
    const CacheLease<CosinePosterior> caches(&im.cos_pool, workers);
    run([&](uint32_t w, uint64_t i) {
      if (queries[i].empty()) return;
      QueryStats qs;
      const std::vector<uint32_t> cand = im.CollectCandidates(queries[i]);
      qs.candidates = cand.size();
      im.VerifyBitsSerial(queries[i], cand, caches[w], &qs, &results[i]);
      finish_query(w, i, qs);
    });
  } else if (im.bbits.has_value()) {
    const CacheLease<BbitMinwisePosterior> caches(&im.bbit_pool, workers);
    run([&](uint32_t w, uint64_t i) {
      if (queries[i].empty()) return;
      QueryStats qs;
      const std::vector<uint32_t> cand = im.CollectCandidates(queries[i]);
      qs.candidates = cand.size();
      im.VerifyBbitSerial(queries[i], cand, caches[w], &qs, &results[i]);
      finish_query(w, i, qs);
    });
  } else if (im.euc_model.has_value()) {
    const CacheLease<EuclideanPosterior> caches(&im.euc_pool, workers);
    run([&](uint32_t w, uint64_t i) {
      if (queries[i].empty()) return;
      QueryStats qs;
      const std::vector<uint32_t> cand = im.CollectCandidates(queries[i]);
      qs.candidates = cand.size();
      im.VerifyIntsSerial(queries[i], cand, caches[w], &qs, &results[i]);
      finish_query(w, i, qs);
    });
  } else {
    const CacheLease<JaccardPosterior> caches(&im.jac_pool, workers);
    run([&](uint32_t w, uint64_t i) {
      if (queries[i].empty()) return;
      QueryStats qs;
      const std::vector<uint32_t> cand = im.CollectCandidates(queries[i]);
      qs.candidates = cand.size();
      im.VerifyIntsSerial(queries[i], cand, caches[w], &qs, &results[i]);
      finish_query(w, i, qs);
    });
  }

  if (stats != nullptr) {
    for (const QueryStats& ws : worker_stats) MergeStats(ws, stats);
  }
  return results;
}

std::vector<QueryMatch> QuerySearcher::QueryTopK(const SparseVectorView& q,
                                                 uint32_t k,
                                                 QueryStats* stats) const {
  std::vector<QueryMatch> all = Query(q, stats);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace bayeslsh
