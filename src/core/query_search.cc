#include "core/query_search.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>

#include "common/bit_ops.h"
#include "common/prng.h"
#include "common/thread_pool.h"
#include "core/cosine_posterior.h"
#include "core/jaccard_posterior.h"
#include "core/pipeline.h"
#include "lsh/minwise_hasher.h"
#include "lsh/srp_hasher.h"

namespace bayeslsh {

namespace {

bool CosineLike(Measure m) {
  return m == Measure::kCosine || m == Measure::kBinaryCosine;
}

// Below this many candidates per worker a query is verified sequentially.
constexpr uint64_t kMinQueryCandidatesPerShard = 16;

double ExactQuerySimilarity(const Dataset& data, uint32_t row,
                            const SparseVectorView& q, Measure measure) {
  const SparseVectorView x = data.Row(row);
  switch (measure) {
    case Measure::kCosine:
      return SparseDot(x, q);  // Query must be pre-normalized.
    case Measure::kJaccard:
      return JaccardSimilarity(x, q);
    case Measure::kBinaryCosine:
      return BinaryCosineSimilarity(x, q);
  }
  return 0.0;
}

}  // namespace

struct QuerySearcher::Impl {
  const Dataset* data;
  QuerySearchConfig cfg;
  uint32_t k = 0;  // Hashes per band.
  uint32_t l = 0;  // Bands.
  uint32_t lite_h = 0;

  // Banding (generation-seed) hashers for queries.
  std::shared_ptr<const GaussianSource> gen_gauss;
  std::optional<MinwiseHasher> gen_minhash;

  // Verification (verification-seed) hashers + collection stores.
  std::shared_ptr<const GaussianSource> verify_gauss;
  std::optional<MinwiseHasher> verify_minhash;
  mutable std::optional<BitSignatureStore> bits;
  mutable std::optional<IntSignatureStore> ints;

  // Posterior models + caches (threshold-bound, hence per-searcher).
  std::optional<CosinePosterior> cos_model;
  std::optional<JaccardPosterior> jac_model;
  mutable std::optional<InferenceCache<CosinePosterior>> cos_cache;
  mutable std::optional<InferenceCache<JaccardPosterior>> jac_cache;

  // Worker pool (num_threads > 1 only) and the per-worker inference caches
  // the sharded verification path uses instead of the shared ones above
  // (memoization is per-worker; persists across queries).
  std::unique_ptr<ThreadPool> pool;
  mutable std::vector<InferenceCache<CosinePosterior>> shard_cos_caches;
  mutable std::vector<InferenceCache<JaccardPosterior>> shard_jac_caches;

  // Banding buckets: per band, key -> row ids.
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> buckets;

  // Resolved BayesLSH params.
  BayesLshParams bayes;

  // --- verification of one candidate against the current query ---
  // Returns true with the similarity in *sim if the candidate is kept.
  // `cache` is the active measure's inference cache: the serial path
  // passes the shared one, the sharded path the caller-worker's private
  // one.
  template <typename Cache, typename EnsureQuery, typename MatchRange>
  bool VerifyCandidate(uint32_t row, const SparseVectorView& q,
                       const EnsureQuery& ensure_query,
                       const MatchRange& match_range, Cache& cache,
                       QueryStats* stats, double* sim) const {
    const uint32_t kk = bayes.hashes_per_round;
    const uint32_t budget = cfg.exact_verification ? lite_h : bayes.max_hashes;
    uint32_t m = 0, n = 0;
    while (n < budget) {
      ensure_query(n + kk);
      m += match_range(row, n, n + kk);
      n += kk;
      if (stats != nullptr) stats->hashes_compared += kk;
      if (m < cache.MinMatches(n)) {
        if (stats != nullptr) ++stats->pruned;
        return false;
      }
      if (!cfg.exact_verification) {
        const auto er = cache.EstimateAt(m, n);
        if (er.concentrated) {
          *sim = er.estimate;
          return true;
        }
      }
    }
    if (cfg.exact_verification) {
      const double s = ExactQuerySimilarity(*data, row, q, cfg.measure);
      if (s >= cfg.threshold) {
        *sim = s;
        return true;
      }
      return false;
    }
    // Estimation mode, budget exhausted: forced accept (cf. Algorithm 1).
    *sim = CosineLike(cfg.measure)
               ? cos_model->Estimate(static_cast<int>(m), static_cast<int>(n))
               : jac_model->Estimate(static_cast<int>(m), static_cast<int>(n));
    return true;
  }
};

QuerySearcher::QuerySearcher(const Dataset* data,
                             const QuerySearchConfig& config)
    : impl_(std::make_unique<Impl>()) {
  assert(data != nullptr);
  Impl& im = *impl_;
  im.data = data;
  im.cfg = config;

  const bool cosine = CosineLike(config.measure);
  im.bayes = config.bayes;
  if (im.bayes.hashes_per_round == 0) im.bayes.hashes_per_round = cosine ? 32 : 16;
  if (im.bayes.max_hashes == 0) im.bayes.max_hashes = cosine ? 4096 : 512;
  im.bayes.max_hashes -= im.bayes.max_hashes % im.bayes.hashes_per_round;
  im.lite_h = config.lite_max_hashes != 0 ? config.lite_max_hashes
                                          : (cosine ? 128u : 64u);
  im.lite_h -= im.lite_h % im.bayes.hashes_per_round;
  if (im.lite_h == 0) im.lite_h = im.bayes.hashes_per_round;

  // Banding shape.
  im.k = config.banding.hashes_per_band != 0
             ? config.banding.hashes_per_band
             : (cosine ? kDefaultCosineBandBits : kDefaultJaccardBandInts);
  const double p = cosine ? CosineToSrpR(config.threshold) : config.threshold;
  im.l = config.banding.num_bands != 0
             ? config.banding.num_bands
             : DeriveNumBands(p, im.k, config.banding.expected_fn_rate,
                              config.banding.max_bands);
  num_bands_ = im.l;
  hashes_per_band_ = im.k;

  const uint64_t gen_seed = GenerationSeed(config.seed);
  const uint64_t verify_seed = VerificationSeed(config.seed);

  // Worker pool + per-worker caches for the sharded verification path.
  const uint32_t num_threads = ResolveNumThreads(config.num_threads);
  if (num_threads > 1) im.pool = std::make_unique<ThreadPool>(num_threads);
  const uint32_t cache_budget =
      config.exact_verification ? im.lite_h : im.bayes.max_hashes;

  // Models and caches.
  if (cosine) {
    im.cos_model.emplace(config.threshold);
    im.cos_cache.emplace(&*im.cos_model, im.bayes.hashes_per_round,
                         cache_budget, im.bayes.epsilon, im.bayes.delta,
                         im.bayes.gamma);
    if (im.pool != nullptr) {
      im.shard_cos_caches.reserve(num_threads);
      for (uint32_t w = 0; w < num_threads; ++w) {
        im.shard_cos_caches.emplace_back(
            &*im.cos_model, im.bayes.hashes_per_round, cache_budget,
            im.bayes.epsilon, im.bayes.delta, im.bayes.gamma);
      }
    }
    im.gen_gauss = std::make_shared<ImplicitGaussianSource>(gen_seed);
    im.verify_gauss = std::make_shared<ImplicitGaussianSource>(verify_seed);
    im.bits.emplace(data, SrpHasher(im.verify_gauss.get()));
  } else {
    im.jac_model.emplace(config.threshold);  // Uniform prior in query mode.
    im.jac_cache.emplace(&*im.jac_model, im.bayes.hashes_per_round,
                         cache_budget, im.bayes.epsilon, im.bayes.delta,
                         im.bayes.gamma);
    if (im.pool != nullptr) {
      im.shard_jac_caches.reserve(num_threads);
      for (uint32_t w = 0; w < num_threads; ++w) {
        im.shard_jac_caches.emplace_back(
            &*im.jac_model, im.bayes.hashes_per_round, cache_budget,
            im.bayes.epsilon, im.bayes.delta, im.bayes.gamma);
      }
    }
    im.gen_minhash.emplace(gen_seed);
    im.verify_minhash.emplace(verify_seed);
    im.ints.emplace(data, MinwiseHasher(verify_seed));
  }

  // Build the banding buckets over the collection with the generation-seed
  // hashes (a separate, throwaway store: banding hashes are not reused for
  // verification; see DESIGN.md §6). Signature growth shards over row
  // ranges and the bucket build over bands; each band's map is owned by
  // exactly one worker, so the result is independent of the thread count.
  im.buckets.resize(im.l);
  const uint32_t n = data->num_vectors();
  ThreadPool* pool = im.pool.get();
  if (cosine) {
    BitSignatureStore gen_store(data, SrpHasher(im.gen_gauss.get()));
    if (pool != nullptr) {
      ParallelFor(pool, 0, n, [&](uint64_t row) {
        gen_store.EnsureBitsUncounted(static_cast<uint32_t>(row),
                                      im.l * im.k);
      });
    } else {
      gen_store.EnsureAllBits(im.l * im.k);
    }
    ParallelFor(pool, 0, im.l, [&](uint64_t band) {
      for (uint32_t row = 0; row < n; ++row) {
        if (data->RowLength(row) == 0) continue;
        const uint64_t key = ExtractBits(
            gen_store.Words(row), static_cast<uint32_t>(band) * im.k, im.k);
        im.buckets[band][key].push_back(row);
      }
    });
  } else {
    IntSignatureStore gen_store(data, MinwiseHasher(gen_seed));
    if (pool != nullptr) {
      ParallelFor(pool, 0, n, [&](uint64_t row) {
        gen_store.EnsureHashesUncounted(static_cast<uint32_t>(row),
                                        im.l * im.k);
      });
    } else {
      gen_store.EnsureAllHashes(im.l * im.k);
    }
    ParallelFor(pool, 0, im.l, [&](uint64_t band) {
      for (uint32_t row = 0; row < n; ++row) {
        if (data->RowLength(row) == 0) continue;
        const uint32_t* h = gen_store.Hashes(row) + band * im.k;
        uint64_t key = Mix64(0x5ba3d9be1e4fULL, band);
        for (uint32_t i = 0; i < im.k; ++i) key = Mix64(key, h[i]);
        im.buckets[band][key].push_back(row);
      }
    });
  }
}

QuerySearcher::~QuerySearcher() = default;

std::vector<QueryMatch> QuerySearcher::Query(const SparseVectorView& q,
                                             QueryStats* stats) const {
  Impl& im = *impl_;
  std::vector<QueryMatch> out;
  if (q.empty()) return out;

  // 1. Collect candidates from the buckets the query falls into.
  std::vector<uint32_t> candidates;
  if (CosineLike(im.cfg.measure)) {
    const SrpHasher hasher(im.gen_gauss.get());
    std::vector<uint64_t> qwords(WordsForBits(im.l * im.k));
    for (uint32_t c = 0; c < qwords.size(); ++c) {
      qwords[c] = hasher.HashChunk(q, c);
    }
    for (uint32_t band = 0; band < im.l; ++band) {
      const uint64_t key = ExtractBits(qwords.data(), band * im.k, im.k);
      const auto it = im.buckets[band].find(key);
      if (it == im.buckets[band].end()) continue;
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
    }
  } else {
    const uint32_t chunks =
        (im.l * im.k + kMinhashChunkInts - 1) / kMinhashChunkInts;
    std::vector<uint32_t> qints(chunks * kMinhashChunkInts);
    for (uint32_t c = 0; c < chunks; ++c) {
      im.gen_minhash->HashChunk(q, c, qints.data() + c * kMinhashChunkInts);
    }
    for (uint32_t band = 0; band < im.l; ++band) {
      uint64_t key = Mix64(0x5ba3d9be1e4fULL, band);
      for (uint32_t i = 0; i < im.k; ++i) {
        key = Mix64(key, qints[band * im.k + i]);
      }
      const auto it = im.buckets[band].find(key);
      if (it == im.buckets[band].end()) continue;
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (stats != nullptr) {
    *stats = QueryStats{};
    stats->candidates = candidates.size();
  }

  // 2. Verify each candidate with incremental Bayesian pruning, using
  //    verification-seed hashes (independent of the banding hashes).
  //
  // With a pool and enough candidates, verification shards over the
  // candidate list: the query signature is hashed to the full budget up
  // front (shared read-only), candidate rows are prefetched to one chunk,
  // and each worker runs the same per-candidate loop with its private
  // inference cache and overflow store. The final similarity sort makes
  // the output independent of the thread count.
  ThreadPool* pool = im.pool.get();
  const bool sharded =
      pool != nullptr &&
      candidates.size() >= kMinQueryCandidatesPerShard * pool->num_threads();
  const uint32_t budget =
      im.cfg.exact_verification ? im.lite_h : im.bayes.max_hashes;
  const uint32_t kk = im.bayes.hashes_per_round;

  if (CosineLike(im.cfg.measure)) {
    const SrpHasher vhasher(im.verify_gauss.get());
    std::vector<uint64_t> qbits;
    auto hash_query_to = [&](uint32_t n_bits) {
      while (qbits.size() < WordsForBits(n_bits)) {
        qbits.push_back(
            vhasher.HashChunk(q, static_cast<uint32_t>(qbits.size())));
      }
    };
    if (!sharded) {
      auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
        im.bits->EnsureBits(row, to);
        return MatchingBits(qbits.data(), im.bits->Words(row), from, to);
      };
      for (uint32_t row : candidates) {
        double sim = 0.0;
        if (im.VerifyCandidate(row, q, hash_query_to, match_range,
                               *im.cos_cache, stats, &sim)) {
          out.push_back({row, sim});
        }
      }
    } else {
      hash_query_to(budget);
      const uint32_t horizon =
          (kk + kBitsPerWord - 1) / kBitsPerWord * kBitsPerWord;
      im.bits->AddBitsComputed(ParallelReduce(
          pool, candidates.size(), uint64_t{0},
          [&](uint32_t, uint64_t b, uint64_t e) {
            uint64_t work = 0;
            for (uint64_t i = b; i < e; ++i) {
              work += im.bits->EnsureBitsUncounted(candidates[i], horizon);
            }
            return work;
          },
          [](uint64_t x, uint64_t y) { return x + y; }));
      const uint32_t num_shards = pool->num_threads();
      struct Shard {
        std::vector<QueryMatch> out;
        QueryStats stats;
        std::optional<BitOverflowShard> overflow;
      };
      std::vector<Shard> shards(num_shards);
      pool->RunShards(candidates.size(), [&](uint32_t s, uint64_t begin,
                                             uint64_t end) {
        Shard& sh = shards[s];
        BitOverflowShard& overflow = sh.overflow.emplace(&*im.bits);
        auto no_ensure = [](uint32_t) {};
        auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
          return MatchingBits(qbits.data(), overflow.RowWords(row, to), from,
                              to);
        };
        for (uint64_t i = begin; i < end; ++i) {
          double sim = 0.0;
          if (im.VerifyCandidate(candidates[i], q, no_ensure, match_range,
                                 im.shard_cos_caches[s], &sh.stats, &sim)) {
            sh.out.push_back({candidates[i], sim});
          }
        }
      });
      uint64_t overflow_total = 0;
      for (Shard& sh : shards) {
        out.insert(out.end(), sh.out.begin(), sh.out.end());
        if (stats != nullptr) {
          stats->pruned += sh.stats.pruned;
          stats->hashes_compared += sh.stats.hashes_compared;
        }
        if (sh.overflow.has_value()) {
          overflow_total += sh.overflow->computed();
          // Fold beyond-horizon signatures back into the persistent store
          // so later queries reuse them (the hashing is already counted).
          sh.overflow->MergeInto(&*im.bits);
        }
      }
      im.bits->AddBitsComputed(overflow_total);
    }
  } else {
    std::vector<uint32_t> qints;
    auto hash_query_to = [&](uint32_t n_hashes) {
      while (qints.size() < n_hashes) {
        const auto chunk = static_cast<uint32_t>(qints.size()) /
                           kMinhashChunkInts;
        qints.resize(qints.size() + kMinhashChunkInts);
        im.verify_minhash->HashChunk(
            q, chunk, qints.data() + chunk * kMinhashChunkInts);
      }
    };
    if (!sharded) {
      auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
        im.ints->EnsureHashes(row, to);
        const uint32_t* h = im.ints->Hashes(row);
        uint32_t m = 0;
        for (uint32_t i = from; i < to; ++i) m += (h[i] == qints[i]);
        return m;
      };
      for (uint32_t row : candidates) {
        double sim = 0.0;
        if (im.VerifyCandidate(row, q, hash_query_to, match_range,
                               *im.jac_cache, stats, &sim)) {
          out.push_back({row, sim});
        }
      }
    } else {
      hash_query_to(budget);
      const uint32_t horizon =
          (kk + kMinhashChunkInts - 1) / kMinhashChunkInts * kMinhashChunkInts;
      im.ints->AddHashesComputed(ParallelReduce(
          pool, candidates.size(), uint64_t{0},
          [&](uint32_t, uint64_t b, uint64_t e) {
            uint64_t work = 0;
            for (uint64_t i = b; i < e; ++i) {
              work += im.ints->EnsureHashesUncounted(candidates[i], horizon);
            }
            return work;
          },
          [](uint64_t x, uint64_t y) { return x + y; }));
      const uint32_t num_shards = pool->num_threads();
      struct Shard {
        std::vector<QueryMatch> out;
        QueryStats stats;
        std::optional<IntOverflowShard> overflow;
      };
      std::vector<Shard> shards(num_shards);
      pool->RunShards(candidates.size(), [&](uint32_t s, uint64_t begin,
                                             uint64_t end) {
        Shard& sh = shards[s];
        IntOverflowShard& overflow = sh.overflow.emplace(&*im.ints);
        auto no_ensure = [](uint32_t) {};
        auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
          const uint32_t* h = overflow.RowHashes(row, to);
          uint32_t m = 0;
          for (uint32_t i = from; i < to; ++i) m += (h[i] == qints[i]);
          return m;
        };
        for (uint64_t i = begin; i < end; ++i) {
          double sim = 0.0;
          if (im.VerifyCandidate(candidates[i], q, no_ensure, match_range,
                                 im.shard_jac_caches[s], &sh.stats, &sim)) {
            sh.out.push_back({candidates[i], sim});
          }
        }
      });
      uint64_t overflow_total = 0;
      for (Shard& sh : shards) {
        out.insert(out.end(), sh.out.begin(), sh.out.end());
        if (stats != nullptr) {
          stats->pruned += sh.stats.pruned;
          stats->hashes_compared += sh.stats.hashes_compared;
        }
        if (sh.overflow.has_value()) {
          overflow_total += sh.overflow->computed();
          // Fold beyond-horizon signatures back into the persistent store
          // so later queries reuse them (the hashing is already counted).
          sh.overflow->MergeInto(&*im.ints);
        }
      }
      im.ints->AddHashesComputed(overflow_total);
    }
  }

  std::sort(out.begin(), out.end(), [](const QueryMatch& a,
                                       const QueryMatch& b) {
    return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
  });
  return out;
}

std::vector<QueryMatch> QuerySearcher::QueryTopK(const SparseVectorView& q,
                                                 uint32_t k,
                                                 QueryStats* stats) const {
  std::vector<QueryMatch> all = Query(q, stats);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace bayeslsh
