#include "core/query_search.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <string>

#include "candgen/banding_index.h"
#include "common/bit_ops.h"
#include "common/prng.h"
#include "common/thread_pool.h"
#include "core/bbit_posterior.h"
#include "core/cosine_posterior.h"
#include "core/index_io.h"
#include "core/jaccard_posterior.h"
#include "core/pipeline.h"
#include "lsh/bbit_minwise.h"
#include "lsh/minwise_hasher.h"
#include "lsh/srp_hasher.h"

namespace bayeslsh {

namespace {

bool CosineLike(Measure m) {
  return m == Measure::kCosine || m == Measure::kBinaryCosine;
}

// Below this many candidates per worker a query is verified sequentially.
constexpr uint64_t kMinQueryCandidatesPerShard = 16;

double ExactQuerySimilarity(const Dataset& data, uint32_t row,
                            const SparseVectorView& q, Measure measure) {
  const SparseVectorView x = data.Row(row);
  switch (measure) {
    case Measure::kCosine:
      return SparseDot(x, q);  // Query must be pre-normalized.
    case Measure::kJaccard:
      return JaccardSimilarity(x, q);
    case Measure::kBinaryCosine:
      return BinaryCosineSimilarity(x, q);
  }
  return 0.0;
}

}  // namespace

struct QuerySearcher::Impl {
  const Dataset* data;
  QuerySearchConfig cfg;
  uint32_t k = 0;  // Hashes per band.
  uint32_t l = 0;  // Bands.
  uint32_t lite_h = 0;

  // Banding (generation-seed) hashers for queries.
  std::shared_ptr<const GaussianSource> gen_gauss;
  std::optional<MinwiseHasher> gen_minhash;

  // Verification (verification-seed) hashers + collection stores (exactly
  // one store engaged, per measure/bbit).
  std::shared_ptr<const GaussianSource> verify_gauss;
  std::optional<MinwiseHasher> verify_minhash;
  mutable std::optional<BitSignatureStore> bits;
  mutable std::optional<IntSignatureStore> ints;
  mutable std::optional<BbitSignatureStore> bbits;

  // Posterior models + caches (threshold-bound, hence per-searcher).
  std::optional<CosinePosterior> cos_model;
  std::optional<JaccardPosterior> jac_model;
  std::optional<BbitMinwisePosterior> bbit_model;
  mutable std::optional<InferenceCache<CosinePosterior>> cos_cache;
  mutable std::optional<InferenceCache<JaccardPosterior>> jac_cache;
  mutable std::optional<InferenceCache<BbitMinwisePosterior>> bbit_cache;

  // Worker pool (num_threads > 1 only) and the per-worker inference caches
  // the sharded verification path uses instead of the shared ones above
  // (memoization is per-worker; persists across queries).
  std::unique_ptr<ThreadPool> pool;
  mutable std::vector<InferenceCache<CosinePosterior>> shard_cos_caches;
  mutable std::vector<InferenceCache<JaccardPosterior>> shard_jac_caches;

  // Banding buckets: owned for a fresh build, borrowed from the persistent
  // index for a warm start (the index outlives the searcher).
  BandingIndex banding_storage;
  const BandingIndex* banding = nullptr;

  // Resolved BayesLSH params.
  BayesLshParams bayes;

  // Resolves parameters, models, caches, hashers, empty stores and the
  // worker pool — everything except the banding buckets, which the two
  // constructors provide differently.
  void Init(const Dataset* d, const QuerySearchConfig& config);

  // --- verification of one candidate against the current query ---
  // Returns true with the similarity in *sim if the candidate is kept.
  // `cache` is the active measure's inference cache: the serial path
  // passes the shared one, the sharded path the caller-worker's private
  // one.
  template <typename Cache, typename EnsureQuery, typename MatchRange>
  bool VerifyCandidate(uint32_t row, const SparseVectorView& q,
                       const EnsureQuery& ensure_query,
                       const MatchRange& match_range, Cache& cache,
                       QueryStats* stats, double* sim) const {
    const uint32_t kk = bayes.hashes_per_round;
    const uint32_t budget = cfg.exact_verification ? lite_h : bayes.max_hashes;
    uint32_t m = 0, n = 0;
    while (n < budget) {
      ensure_query(n + kk);
      m += match_range(row, n, n + kk);
      n += kk;
      if (stats != nullptr) stats->hashes_compared += kk;
      if (m < cache.MinMatches(n)) {
        if (stats != nullptr) ++stats->pruned;
        return false;
      }
      if (!cfg.exact_verification) {
        const auto er = cache.EstimateAt(m, n);
        if (er.concentrated) {
          *sim = er.estimate;
          return true;
        }
      }
    }
    if (cfg.exact_verification) {
      const double s = ExactQuerySimilarity(*data, row, q, cfg.measure);
      if (s >= cfg.threshold) {
        *sim = s;
        return true;
      }
      return false;
    }
    // Estimation mode, budget exhausted: forced accept (cf. Algorithm 1).
    const int mi = static_cast<int>(m), ni = static_cast<int>(n);
    if (CosineLike(cfg.measure)) {
      *sim = cos_model->Estimate(mi, ni);
    } else if (bbit_model.has_value()) {
      *sim = bbit_model->Estimate(mi, ni);
    } else {
      *sim = jac_model->Estimate(mi, ni);
    }
    return true;
  }
};

void QuerySearcher::Impl::Init(const Dataset* d,
                               const QuerySearchConfig& config) {
  assert(d != nullptr);
  data = d;
  cfg = config;

  const bool cosine = CosineLike(config.measure);
  if (config.bbit != 0 &&
      (cosine || !IsValidBbitWidth(config.bbit))) {
    throw std::invalid_argument(
        "QuerySearchConfig: bbit requires the Jaccard measure and a "
        "power-of-two width in [1, 32]");
  }
  bayes = config.bayes;
  if (bayes.hashes_per_round == 0) bayes.hashes_per_round = cosine ? 32 : 16;
  if (bayes.max_hashes == 0) bayes.max_hashes = cosine ? 4096 : 512;
  bayes.max_hashes -= bayes.max_hashes % bayes.hashes_per_round;
  lite_h = config.lite_max_hashes != 0 ? config.lite_max_hashes
                                       : (cosine ? 128u : 64u);
  lite_h -= lite_h % bayes.hashes_per_round;
  if (lite_h == 0) lite_h = bayes.hashes_per_round;

  // Banding shape (the warm-start constructor overrides it with the
  // index's recorded shape).
  const BandingShape shape =
      ResolveBandingShape(config.measure, config.threshold, config.banding);
  k = shape.hashes_per_band;
  l = shape.num_bands;

  const uint64_t gen_seed = GenerationSeed(config.seed);
  const uint64_t verify_seed = VerificationSeed(config.seed);

  // Worker pool + per-worker caches for the sharded verification path.
  // b-bit stores have no overflow-shard protocol, so b-bit verification
  // stays sequential per query and needs no per-worker caches.
  const uint32_t num_threads = ResolveNumThreads(config.num_threads);
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  const uint32_t cache_budget =
      config.exact_verification ? lite_h : bayes.max_hashes;

  // Models and caches.
  if (cosine) {
    cos_model.emplace(config.threshold);
    cos_cache.emplace(&*cos_model, bayes.hashes_per_round, cache_budget,
                      bayes.epsilon, bayes.delta, bayes.gamma);
    if (pool != nullptr) {
      shard_cos_caches.reserve(num_threads);
      for (uint32_t w = 0; w < num_threads; ++w) {
        shard_cos_caches.emplace_back(&*cos_model, bayes.hashes_per_round,
                                      cache_budget, bayes.epsilon,
                                      bayes.delta, bayes.gamma);
      }
    }
    gen_gauss = std::make_shared<ImplicitGaussianSource>(gen_seed);
    verify_gauss = std::make_shared<ImplicitGaussianSource>(verify_seed);
    bits.emplace(d, SrpHasher(verify_gauss.get()));
  } else if (config.bbit != 0) {
    bbit_model.emplace(config.threshold, config.bbit);
    bbit_cache.emplace(&*bbit_model, bayes.hashes_per_round, cache_budget,
                       bayes.epsilon, bayes.delta, bayes.gamma);
    gen_minhash.emplace(gen_seed);
    verify_minhash.emplace(verify_seed);
    bbits.emplace(d, MinwiseHasher(verify_seed), config.bbit);
  } else {
    jac_model.emplace(config.threshold);  // Uniform prior in query mode.
    jac_cache.emplace(&*jac_model, bayes.hashes_per_round, cache_budget,
                      bayes.epsilon, bayes.delta, bayes.gamma);
    if (pool != nullptr) {
      shard_jac_caches.reserve(num_threads);
      for (uint32_t w = 0; w < num_threads; ++w) {
        shard_jac_caches.emplace_back(&*jac_model, bayes.hashes_per_round,
                                      cache_budget, bayes.epsilon,
                                      bayes.delta, bayes.gamma);
      }
    }
    gen_minhash.emplace(gen_seed);
    verify_minhash.emplace(verify_seed);
    ints.emplace(d, MinwiseHasher(verify_seed));
  }
}

QuerySearcher::QuerySearcher(const Dataset* data,
                             const QuerySearchConfig& config)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.Init(data, config);

  // Build the banding buckets over the collection with the generation-seed
  // hashes (a separate, throwaway store: banding hashes are not reused for
  // verification; see DESIGN.md §6). Deterministic for any thread count —
  // see candgen/banding_index.h.
  if (CosineLike(config.measure)) {
    im.banding_storage = BandingIndex::BuildCosine(
        *data, im.gen_gauss.get(), im.k, im.l, im.pool.get());
  } else {
    im.banding_storage = BandingIndex::BuildJaccard(
        *data, GenerationSeed(config.seed), im.k, im.l, im.pool.get());
  }
  im.banding = &im.banding_storage;
  num_bands_ = im.l;
  hashes_per_band_ = im.k;
}

QuerySearcher::QuerySearcher(const PersistentIndex* index,
                             const QuerySearchConfig& config)
    : impl_(std::make_unique<Impl>()) {
  assert(index != nullptr);
  if (config.measure != index->measure()) {
    throw IndexError("QuerySearcher: config measure does not match the "
                     "index");
  }
  if (config.seed != index->seed()) {
    throw IndexError("QuerySearcher: config seed does not match the index "
                     "(loaded signatures would disagree with query hashes)");
  }
  if (config.bbit != index->bbit()) {
    throw IndexError("QuerySearcher: config bbit width does not match the "
                     "index");
  }
  if ((config.banding.hashes_per_band != 0 &&
       config.banding.hashes_per_band != index->hashes_per_band()) ||
      (config.banding.num_bands != 0 &&
       config.banding.num_bands != index->num_bands())) {
    throw IndexError("QuerySearcher: explicit banding shape does not match "
                     "the index");
  }

  Impl& im = *impl_;
  im.Init(&index->data(), config);
  // Serve from the index's recorded shape and buckets; adopt its
  // prefetched verification signatures (copies — many searchers can share
  // one loaded index).
  im.k = index->hashes_per_band();
  im.l = index->num_bands();
  im.banding = &index->banding();
  if (im.bits.has_value() && index->bit_store() != nullptr) {
    im.bits->CopyRowsFrom(*index->bit_store());
  } else if (im.ints.has_value() && index->int_store() != nullptr) {
    im.ints->CopyRowsFrom(*index->int_store());
  } else if (im.bbits.has_value() && index->bbit_store() != nullptr) {
    im.bbits->CopyRowsFrom(*index->bbit_store());
  }
  num_bands_ = im.l;
  hashes_per_band_ = im.k;
}

QuerySearcher::~QuerySearcher() = default;

std::vector<QueryMatch> QuerySearcher::Query(const SparseVectorView& q,
                                             QueryStats* stats) const {
  Impl& im = *impl_;
  std::vector<QueryMatch> out;
  if (q.empty()) return out;

  // 1. Collect candidates from the buckets the query falls into.
  std::vector<uint32_t> candidates;
  if (CosineLike(im.cfg.measure)) {
    const SrpHasher hasher(im.gen_gauss.get());
    std::vector<uint64_t> qwords(WordsForBits(im.l * im.k));
    for (uint32_t c = 0; c < qwords.size(); ++c) {
      qwords[c] = hasher.HashChunk(q, c);
    }
    for (uint32_t band = 0; band < im.l; ++band) {
      const auto* bucket = im.banding->Find(
          band, BandingIndex::CosineKey(qwords.data(), band, im.k));
      if (bucket == nullptr) continue;
      candidates.insert(candidates.end(), bucket->begin(), bucket->end());
    }
  } else {
    const uint32_t chunks =
        (im.l * im.k + kMinhashChunkInts - 1) / kMinhashChunkInts;
    std::vector<uint32_t> qints(chunks * kMinhashChunkInts);
    for (uint32_t c = 0; c < chunks; ++c) {
      im.gen_minhash->HashChunk(q, c, qints.data() + c * kMinhashChunkInts);
    }
    for (uint32_t band = 0; band < im.l; ++band) {
      const auto* bucket = im.banding->Find(
          band, BandingIndex::JaccardKey(qints.data(), band, im.k));
      if (bucket == nullptr) continue;
      candidates.insert(candidates.end(), bucket->begin(), bucket->end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (stats != nullptr) {
    *stats = QueryStats{};
    stats->candidates = candidates.size();
  }

  // 2. Verify each candidate with incremental Bayesian pruning, using
  //    verification-seed hashes (independent of the banding hashes).
  //
  // With a pool and enough candidates, verification shards over the
  // candidate list: the query signature is hashed to the full budget up
  // front (shared read-only), candidate rows are prefetched to one chunk,
  // and each worker runs the same per-candidate loop with its private
  // inference cache and overflow store. The final similarity sort makes
  // the output independent of the thread count. b-bit verification always
  // runs the serial loop (no overflow-shard protocol) — still identical
  // for every thread count.
  ThreadPool* pool = im.pool.get();
  const bool sharded =
      pool != nullptr && !im.bbits.has_value() &&
      candidates.size() >= kMinQueryCandidatesPerShard * pool->num_threads();
  const uint32_t budget =
      im.cfg.exact_verification ? im.lite_h : im.bayes.max_hashes;
  const uint32_t kk = im.bayes.hashes_per_round;

  if (CosineLike(im.cfg.measure)) {
    const SrpHasher vhasher(im.verify_gauss.get());
    std::vector<uint64_t> qbits;
    auto hash_query_to = [&](uint32_t n_bits) {
      while (qbits.size() < WordsForBits(n_bits)) {
        qbits.push_back(
            vhasher.HashChunk(q, static_cast<uint32_t>(qbits.size())));
      }
    };
    if (!sharded) {
      auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
        im.bits->EnsureBits(row, to);
        return MatchingBits(qbits.data(), im.bits->Words(row), from, to);
      };
      for (uint32_t row : candidates) {
        double sim = 0.0;
        if (im.VerifyCandidate(row, q, hash_query_to, match_range,
                               *im.cos_cache, stats, &sim)) {
          out.push_back({row, sim});
        }
      }
    } else {
      hash_query_to(budget);
      const uint32_t horizon =
          (kk + kBitsPerWord - 1) / kBitsPerWord * kBitsPerWord;
      im.bits->AddBitsComputed(ParallelReduce(
          pool, candidates.size(), uint64_t{0},
          [&](uint32_t, uint64_t b, uint64_t e) {
            uint64_t work = 0;
            for (uint64_t i = b; i < e; ++i) {
              work += im.bits->EnsureBitsUncounted(candidates[i], horizon);
            }
            return work;
          },
          [](uint64_t x, uint64_t y) { return x + y; }));
      const uint32_t num_shards = pool->num_threads();
      struct Shard {
        std::vector<QueryMatch> out;
        QueryStats stats;
        std::optional<BitOverflowShard> overflow;
      };
      std::vector<Shard> shards(num_shards);
      pool->RunShards(candidates.size(), [&](uint32_t s, uint64_t begin,
                                             uint64_t end) {
        Shard& sh = shards[s];
        BitOverflowShard& overflow = sh.overflow.emplace(&*im.bits);
        auto no_ensure = [](uint32_t) {};
        auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
          return MatchingBits(qbits.data(), overflow.RowWords(row, to), from,
                              to);
        };
        for (uint64_t i = begin; i < end; ++i) {
          double sim = 0.0;
          if (im.VerifyCandidate(candidates[i], q, no_ensure, match_range,
                                 im.shard_cos_caches[s], &sh.stats, &sim)) {
            sh.out.push_back({candidates[i], sim});
          }
        }
      });
      uint64_t overflow_total = 0;
      for (Shard& sh : shards) {
        out.insert(out.end(), sh.out.begin(), sh.out.end());
        if (stats != nullptr) {
          stats->pruned += sh.stats.pruned;
          stats->hashes_compared += sh.stats.hashes_compared;
        }
        if (sh.overflow.has_value()) {
          overflow_total += sh.overflow->computed();
          // Fold beyond-horizon signatures back into the persistent store
          // so later queries reuse them (the hashing is already counted).
          sh.overflow->MergeInto(&*im.bits);
        }
      }
      im.bits->AddBitsComputed(overflow_total);
    }
  } else if (im.bbits.has_value()) {
    // b-bit minwise verification: hash the query with the full-width
    // minwise hasher, pack the low b bits into the store's group layout,
    // and compare word-parallel against the lazily grown collection rows.
    const uint32_t b = im.bbits->bits_per_hash();
    const uint32_t values_per_word = 64 / b;
    std::vector<uint32_t> qints;
    std::vector<uint64_t> qwords;
    auto hash_query_to = [&](uint32_t n_hashes) {
      const uint32_t have = static_cast<uint32_t>(qints.size());
      if (n_hashes <= have) return;
      const uint32_t want = (n_hashes + kMinhashChunkInts - 1) /
                            kMinhashChunkInts * kMinhashChunkInts;
      qints.resize(want);
      for (uint32_t c = have / kMinhashChunkInts;
           c < want / kMinhashChunkInts; ++c) {
        im.verify_minhash->HashChunk(q, c,
                                     qints.data() + c * kMinhashChunkInts);
      }
      qwords.resize((want + values_per_word - 1) / values_per_word, 0);
      PackBbitValues(qints.data() + have, have, want, b, qwords.data());
    };
    auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
      im.bbits->EnsureHashes(row, to);
      return MatchingBbitGroups(im.bbits->Words(row), qwords.data(), from,
                                to, b);
    };
    for (uint32_t row : candidates) {
      double sim = 0.0;
      if (im.VerifyCandidate(row, q, hash_query_to, match_range,
                             *im.bbit_cache, stats, &sim)) {
        out.push_back({row, sim});
      }
    }
  } else {
    std::vector<uint32_t> qints;
    auto hash_query_to = [&](uint32_t n_hashes) {
      while (qints.size() < n_hashes) {
        const auto chunk = static_cast<uint32_t>(qints.size()) /
                           kMinhashChunkInts;
        qints.resize(qints.size() + kMinhashChunkInts);
        im.verify_minhash->HashChunk(
            q, chunk, qints.data() + chunk * kMinhashChunkInts);
      }
    };
    if (!sharded) {
      auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
        im.ints->EnsureHashes(row, to);
        const uint32_t* h = im.ints->Hashes(row);
        uint32_t m = 0;
        for (uint32_t i = from; i < to; ++i) m += (h[i] == qints[i]);
        return m;
      };
      for (uint32_t row : candidates) {
        double sim = 0.0;
        if (im.VerifyCandidate(row, q, hash_query_to, match_range,
                               *im.jac_cache, stats, &sim)) {
          out.push_back({row, sim});
        }
      }
    } else {
      hash_query_to(budget);
      const uint32_t horizon =
          (kk + kMinhashChunkInts - 1) / kMinhashChunkInts * kMinhashChunkInts;
      im.ints->AddHashesComputed(ParallelReduce(
          pool, candidates.size(), uint64_t{0},
          [&](uint32_t, uint64_t b, uint64_t e) {
            uint64_t work = 0;
            for (uint64_t i = b; i < e; ++i) {
              work += im.ints->EnsureHashesUncounted(candidates[i], horizon);
            }
            return work;
          },
          [](uint64_t x, uint64_t y) { return x + y; }));
      const uint32_t num_shards = pool->num_threads();
      struct Shard {
        std::vector<QueryMatch> out;
        QueryStats stats;
        std::optional<IntOverflowShard> overflow;
      };
      std::vector<Shard> shards(num_shards);
      pool->RunShards(candidates.size(), [&](uint32_t s, uint64_t begin,
                                             uint64_t end) {
        Shard& sh = shards[s];
        IntOverflowShard& overflow = sh.overflow.emplace(&*im.ints);
        auto no_ensure = [](uint32_t) {};
        auto match_range = [&](uint32_t row, uint32_t from, uint32_t to) {
          const uint32_t* h = overflow.RowHashes(row, to);
          uint32_t m = 0;
          for (uint32_t i = from; i < to; ++i) m += (h[i] == qints[i]);
          return m;
        };
        for (uint64_t i = begin; i < end; ++i) {
          double sim = 0.0;
          if (im.VerifyCandidate(candidates[i], q, no_ensure, match_range,
                                 im.shard_jac_caches[s], &sh.stats, &sim)) {
            sh.out.push_back({candidates[i], sim});
          }
        }
      });
      uint64_t overflow_total = 0;
      for (Shard& sh : shards) {
        out.insert(out.end(), sh.out.begin(), sh.out.end());
        if (stats != nullptr) {
          stats->pruned += sh.stats.pruned;
          stats->hashes_compared += sh.stats.hashes_compared;
        }
        if (sh.overflow.has_value()) {
          overflow_total += sh.overflow->computed();
          // Fold beyond-horizon signatures back into the persistent store
          // so later queries reuse them (the hashing is already counted).
          sh.overflow->MergeInto(&*im.ints);
        }
      }
      im.ints->AddHashesComputed(overflow_total);
    }
  }

  std::sort(out.begin(), out.end(), [](const QueryMatch& a,
                                       const QueryMatch& b) {
    return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
  });
  return out;
}

std::vector<QueryMatch> QuerySearcher::QueryTopK(const SparseVectorView& q,
                                                 uint32_t k,
                                                 QueryStats* stats) const {
  std::vector<QueryMatch> all = Query(q, stats);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace bayeslsh
