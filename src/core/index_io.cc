#include "core/index_io.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <streambuf>

#include "common/prng.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "euclidean/pstable_hasher.h"
#include "lsh/icws_hasher.h"
#include "lsh/minwise_hasher.h"
#include "lsh/srp_hasher.h"
#include "vec/binary_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define BAYESLSH_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define BAYESLSH_HAS_MMAP 0
#endif

namespace bayeslsh {

namespace {

// 8 bytes: name + format generation + an 'E' endianness canary in the same
// trailing position as the dataset magic (vec/io.cc).
constexpr char kIndexMagic[8] = {'B', 'L', 'S', 'H', 'I', 'X', '1', 'E'};

uint8_t MeasureTag(Measure m) {
  switch (m) {
    case Measure::kCosine:
      return 0;
    case Measure::kJaccard:
      return 1;
    case Measure::kBinaryCosine:
      return 2;
    case Measure::kWeightedJaccard:
      return 3;
    case Measure::kKernelCosine:
      return 4;
    case Measure::kEuclidean:
      return 5;
  }
  return 255;
}

// Measures whose tag (and, for the kernel cosine, measure-config section)
// only format v3 can carry.
constexpr uint8_t kFirstV3MeasureTag = 3;

// Grows every row to the prefetch horizon, sharded over rows; `ensure`
// wraps the store's EnsureBitsUncounted / EnsureHashesUncounted and
// returns the work done for one row.
template <typename EnsureFn>
uint64_t PrefetchRows(uint32_t n, ThreadPool* pool, const EnsureFn& ensure) {
  return ParallelWorkSum(pool, n, [&](uint64_t row) {
    return ensure(static_cast<uint32_t>(row));
  });
}

Measure MeasureFromTag(uint8_t tag) {
  switch (tag) {
    case 0:
      return Measure::kCosine;
    case 1:
      return Measure::kJaccard;
    case 2:
      return Measure::kBinaryCosine;
    case 3:
      return Measure::kWeightedJaccard;
    case 4:
      return Measure::kKernelCosine;
    case 5:
      return Measure::kEuclidean;
    default:
      throw IndexError("index header: unknown measure tag " +
                       std::to_string(tag));
  }
}

// Read-only istream buffer over an in-memory region (the mmap'd index
// file). Fully seekable — the section readers use tellg/seekg both to
// bound allocations (RemainingBytes) and to resolve blob offsets for the
// zero-copy views.
class MemoryStreambuf : public std::streambuf {
 public:
  MemoryStreambuf(const char* base, size_t size)
      : base_(const_cast<char*>(base)), size_(size) {
    setg(base_, base_, base_ + size_);
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if ((which & std::ios_base::in) == 0) return pos_type(off_type(-1));
    off_type target = off;
    if (dir == std::ios_base::cur) {
      target += gptr() - eback();
    } else if (dir == std::ios_base::end) {
      target += static_cast<off_type>(size_);
    }
    if (target < 0 || target > static_cast<off_type>(size_)) {
      return pos_type(off_type(-1));
    }
    setg(base_, base_ + target, base_ + size_);
    return pos_type(target);
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }

 private:
  char* base_;
  size_t size_;
};

}  // namespace

// RAII read-only file mapping. The fd is closed right after mmap — the
// mapping holds its own reference to the file.
struct PersistentIndex::MappedFile {
  const char* data = nullptr;
  size_t size = 0;

#if BAYESLSH_HAS_MMAP
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IndexError("index load: cannot open " + path);
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      throw IndexError("index load: cannot stat " + path);
    }
    size = static_cast<size_t>(st.st_size);
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) {
      throw IndexError("index load: mmap failed for " + path);
    }
    data = static_cast<const char*>(p);
  }

  ~MappedFile() {
    if (data != nullptr) {
      ::munmap(const_cast<char*>(data), size);
    }
  }
#endif

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
};

PersistentIndex::~PersistentIndex() = default;

SignatureKind PersistentIndex::signature_kind() const {
  // Derived from the config fields, not the store pointers, so the
  // fingerprint is well-defined during Load before stores exist.
  switch (measure_) {
    case Measure::kCosine:
    case Measure::kBinaryCosine:
      return SignatureKind::kSrpBits;
    case Measure::kKernelCosine:
      return SignatureKind::kKlshBits;
    case Measure::kJaccard:
      return bbit_ != 0 ? SignatureKind::kBbitPacked
                        : SignatureKind::kMinwiseInts;
    case Measure::kWeightedJaccard:
      return SignatureKind::kIcwsInts;
    case Measure::kEuclidean:
      return SignatureKind::kPstableInts;
  }
  return SignatureKind::kSrpBits;
}

uint64_t PersistentIndex::Fingerprint(uint32_t format_version) const {
  uint64_t fp = Mix64(format_version, MeasureTag(measure_));
  fp = Mix64(fp, static_cast<uint64_t>(signature_kind()), bbit_);
  fp = Mix64(fp, seed_, std::bit_cast<uint64_t>(threshold_));
  fp = Mix64(fp, k_, l_);
  fp = Mix64(fp, data_.num_vectors(), data_.num_dims());
  return Mix64(fp, data_.nnz());
}

std::unique_ptr<PersistentIndex> PersistentIndex::Build(
    Dataset data, const IndexBuildConfig& cfg,
    const SignatureAdoption* adopt) {
  const bool euclidean = cfg.measure == Measure::kEuclidean;
  if (euclidean ? !(cfg.threshold > 0.0)
                : (cfg.threshold <= 0.0 || cfg.threshold > 1.0)) {
    throw std::invalid_argument(
        euclidean
            ? "IndexBuildConfig: the Euclidean threshold is a radius and "
              "must be > 0"
            : "IndexBuildConfig: threshold must be in (0, 1]");
  }
  if (cfg.bbit != 0 &&
      (cfg.measure != Measure::kJaccard || !IsValidBbitWidth(cfg.bbit))) {
    throw std::invalid_argument(
        "IndexBuildConfig: bbit requires the Jaccard measure and a "
        "power-of-two width in [1, 32]");
  }
  if (adopt != nullptr && adopt->source == nullptr) adopt = nullptr;
  if (adopt != nullptr) {
    const PersistentIndex& src = *adopt->source;
    if (src.measure() != cfg.measure || src.seed() != cfg.seed ||
        src.bbit() != cfg.bbit) {
      throw std::invalid_argument(
          "SignatureAdoption: source index (measure, seed, bbit) must "
          "match the build config — signatures from a different hash "
          "stream are not the same function");
    }
    if (adopt->source_rows.size() != data.num_vectors()) {
      throw std::invalid_argument(
          "SignatureAdoption: source_rows must have one entry per new "
          "dataset row");
    }
    const uint32_t src_rows = src.data().num_vectors();
    for (const uint32_t sr : adopt->source_rows) {
      if (sr != SignatureAdoption::kFreshRow && sr >= src_rows) {
        throw std::invalid_argument(
            "SignatureAdoption: source_rows names a row beyond the "
            "source index");
      }
    }
  }

  std::unique_ptr<PersistentIndex> index(new PersistentIndex());
  index->data_ = std::move(data);
  index->measure_ = cfg.measure;
  index->threshold_ = cfg.threshold;
  index->seed_ = cfg.seed;
  index->bbit_ = cfg.bbit;
  const BandingShape shape =
      ResolveBandingShape(cfg.measure, cfg.threshold, cfg.banding);
  // The load path rejects k outside [1, 64] (a cosine band key is one
  // ExtractBits call), so refuse to build what could never be loaded.
  if (shape.hashes_per_band == 0 || shape.hashes_per_band > 64 ||
      shape.num_bands == 0) {
    throw std::invalid_argument(
        "IndexBuildConfig: banding shape must have 1..64 hashes per band "
        "and at least one band");
  }
  index->k_ = shape.hashes_per_band;
  index->l_ = shape.num_bands;

  const uint32_t num_threads = ResolveNumThreads(cfg.num_threads);
  std::unique_ptr<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (num_threads > 1) {
    pool_storage = std::make_unique<ThreadPool>(num_threads);
    pool = pool_storage.get();
  }

  const uint64_t gen_seed = GenerationSeed(cfg.seed);
  const uint64_t verify_seed = VerificationSeed(cfg.seed);
  const Dataset& d = index->data_;

  // Hash families per measure: the generation-family chunk hasher feeds
  // the banding build, the verification family lives inside the store.
  std::shared_ptr<const GaussianSource> gen_gauss;  // Keep-alive for SRP.
  std::shared_ptr<const WordChunkHasher> gen_bits;
  std::shared_ptr<const IntChunkHasher> gen_ints;
  switch (cfg.measure) {
    case Measure::kCosine:
    case Measure::kBinaryCosine: {
      gen_gauss = std::make_shared<ImplicitGaussianSource>(gen_seed);
      gen_bits =
          std::make_shared<SrpChunkHasher>(SrpHasher(gen_gauss.get()));
      index->verify_gauss_ =
          std::make_shared<ImplicitGaussianSource>(verify_seed);
      index->bits_ = std::make_unique<BitSignatureStore>(
          &d, SrpHasher(index->verify_gauss_.get()));
      break;
    }
    case Measure::kKernelCosine: {
      index->kernel_spec_ = cfg.kernel;
      try {
        index->kernel_ = MakeKernel(cfg.kernel);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("IndexBuildConfig: ") +
                                    e.what());
      }
      Dataset anchors =
          cfg.klsh_anchors != nullptr
              ? *cfg.klsh_anchors
              : SampleKlshAnchors(
                    d, std::min(cfg.klsh.num_anchors, d.num_vectors()),
                    cfg.seed);
      index->klsh_params_ = cfg.klsh;
      index->klsh_params_.num_anchors = anchors.num_vectors();
      index->klsh_anchors_ =
          std::make_shared<const Dataset>(std::move(anchors));
      index->klsh_cache_ = std::make_shared<KlshRowCache>();
      KlshParams kp = index->klsh_params_;
      kp.seed = gen_seed;
      const auto gen_klsh = std::shared_ptr<const KlshHasher>(
          new KlshHasher(KlshHasher::FromAnchors(
              Dataset(*index->klsh_anchors_), index->kernel_.get(), kp)));
      kp.seed = verify_seed;
      index->verify_klsh_ = std::shared_ptr<const KlshHasher>(
          new KlshHasher(KlshHasher::FromAnchors(
              Dataset(*index->klsh_anchors_), index->kernel_.get(), kp)));
      gen_bits = std::make_shared<KlshChunkHasher>(gen_klsh,
                                                   index->klsh_cache_, &d);
      index->bits_ = std::make_unique<BitSignatureStore>(
          &d, std::make_shared<KlshChunkHasher>(index->verify_klsh_,
                                                index->klsh_cache_, &d));
      break;
    }
    case Measure::kJaccard: {
      gen_ints = std::make_shared<MinwiseChunkHasher>(
          MinwiseHasher(gen_seed));
      if (cfg.bbit == 0) {
        index->ints_ = std::make_unique<IntSignatureStore>(
            &d, MinwiseHasher(verify_seed));
      } else {
        index->bbits_ = std::make_unique<BbitSignatureStore>(
            &d, MinwiseHasher(verify_seed), cfg.bbit);
      }
      break;
    }
    case Measure::kWeightedJaccard: {
      gen_ints = std::make_shared<IcwsChunkHasher>(IcwsHasher(gen_seed));
      index->ints_ = std::make_unique<IntSignatureStore>(
          &d, std::make_shared<IcwsChunkHasher>(IcwsHasher(verify_seed)));
      break;
    }
    case Measure::kEuclidean: {
      // Serving-stack width convention w = 2 * radius — the same one
      // ResolveBandingShape used for the shape above.
      const double width = 2.0 * cfg.threshold;
      gen_ints = std::make_shared<PstableChunkHasher>(
          PstableHasher(gen_seed, width));
      index->ints_ = std::make_unique<IntSignatureStore>(
          &d, std::make_shared<PstableChunkHasher>(
                  PstableHasher(verify_seed, width)));
      break;
    }
  }

  // Adopted KLSH signatures are only the same function when the source
  // index hashed against the same kernel and anchors.
  if (adopt != nullptr && cfg.measure == Measure::kKernelCosine) {
    const PersistentIndex& src = *adopt->source;
    const Dataset* sa = src.klsh_anchors().get();
    if (sa == nullptr || src.kernel_spec().tag != cfg.kernel.tag ||
        src.kernel_spec().gamma != cfg.kernel.gamma ||
        sa->num_vectors() != index->klsh_anchors_->num_vectors() ||
        sa->nnz() != index->klsh_anchors_->nnz()) {
      throw std::invalid_argument(
          "SignatureAdoption: KLSH source index kernel/anchors disagree "
          "with the build config");
    }
  }

  // Banding buckets from the generation family (deterministic for any
  // thread count — candgen/banding_index.h).
  index->banding_ =
      gen_bits != nullptr
          ? BandingIndex::BuildBits(d, gen_bits, index->k_, index->l_, pool)
          : BandingIndex::BuildInts(d, gen_ints, index->k_, index->l_,
                                    pool);

  // kPrefetchFull is the default per-candidate serving budget
  // (BayesLshParams::max_hashes), so a warm searcher at default budgets
  // freezes with zero top-up hashing.
  const uint32_t prefetch =
      cfg.prefetch_hashes == kPrefetchFull ? BayesLshParams{}.max_hashes
      : cfg.prefetch_hashes != 0           ? cfg.prefetch_hashes
      : (index->bits_ != nullptr ? 32u : 16u);

  // Source row donating its signature to new row `row`, or kFreshRow.
  const auto donor = [&](uint32_t row) {
    return adopt != nullptr ? adopt->source_rows[row]
                            : SignatureAdoption::kFreshRow;
  };

  if (index->bits_ != nullptr) {
    BitSignatureStore* store = index->bits_.get();
    // Adoption happens inside the sharded prefetch (distinct rows touch
    // distinct vectors, like the uncounted growth itself); the ensure
    // call after it only tops up rows the donor left short.
    const BitSignatureStore* src =
        adopt != nullptr ? adopt->source->bit_store() : nullptr;
    store->AddBitsComputed(
        PrefetchRows(d.num_vectors(), pool, [&](uint32_t row) {
          const uint32_t sr = donor(row);
          if (src != nullptr && sr != SignatureAdoption::kFreshRow) {
            const uint64_t* w = src->Words(sr);
            store->AdoptWords(
                row, std::vector<uint64_t>(w, w + src->NumBits(sr) / 64));
          }
          return store->EnsureBitsUncounted(row, prefetch);
        }));
  } else {
    if (index->ints_ != nullptr) {
      IntSignatureStore* store = index->ints_.get();
      const IntSignatureStore* src =
          adopt != nullptr ? adopt->source->int_store() : nullptr;
      store->AddHashesComputed(
          PrefetchRows(d.num_vectors(), pool, [&](uint32_t row) {
            const uint32_t sr = donor(row);
            if (src != nullptr && sr != SignatureAdoption::kFreshRow) {
              const uint32_t* h = src->Hashes(sr);
              store->AdoptHashes(
                  row, std::vector<uint32_t>(h, h + src->NumHashes(sr)));
            }
            return store->EnsureHashesUncounted(row, prefetch);
          }));
    } else {
      BbitSignatureStore* store = index->bbits_.get();
      const BbitSignatureStore* src =
          adopt != nullptr ? adopt->source->bbit_store() : nullptr;
      store->AddHashesComputed(
          PrefetchRows(d.num_vectors(), pool, [&](uint32_t row) {
            const uint32_t sr = donor(row);
            if (src != nullptr && sr != SignatureAdoption::kFreshRow) {
              // Packed layout: NumHashes values at bits_per_hash bits
              // each is exactly NumHashes * b / 64 whole words.
              const uint64_t* w = src->Words(sr);
              const uint64_t nw = static_cast<uint64_t>(src->NumHashes(sr)) *
                                  cfg.bbit / 64;
              store->AdoptWords(row, std::vector<uint64_t>(w, w + nw));
            }
            return store->EnsureHashesUncounted(row, prefetch);
          }));
    }
  }
  return index;
}

void PersistentIndex::Save(std::ostream& out,
                           uint32_t format_version) const {
  if (format_version < kIndexMinFormatVersion ||
      format_version > kIndexFormatVersion) {
    throw IndexError("index save: unsupported format version " +
                     std::to_string(format_version));
  }
  if (MeasureTag(measure_) >= kFirstV3MeasureTag && format_version < 3) {
    throw IndexError("index save: measure requires format version 3");
  }
  // v2 and later page-align the signature blob for zero-copy loads.
  const bool align_blob = format_version >= 2;
  out.write(kIndexMagic, sizeof(kIndexMagic));
  WritePod(out, format_version);
  WritePod(out, MeasureTag(measure_));
  WritePod(out, static_cast<uint8_t>(signature_kind()));
  WritePod(out, static_cast<uint8_t>(bbit_));
  WritePod(out, static_cast<uint8_t>(0));  // Reserved.
  WritePod(out, seed_);
  WritePod(out, threshold_);
  WritePod(out, k_);
  WritePod(out, l_);
  const uint64_t fp = Fingerprint(format_version);
  WritePod(out, fp);
  WriteDatasetBinary(data_, out);
  // v3 KLSH measure-config section: the hash family is a function of the
  // kernel and anchors, so both are part of the index — a loaded index
  // must serve bit-for-bit the signatures it stored.
  if (measure_ == Measure::kKernelCosine) {
    WritePod(out, static_cast<uint8_t>(kernel_spec_.tag));
    WritePod(out, kernel_spec_.gamma);
    WritePod(out, klsh_params_.num_anchors);
    WritePod(out, klsh_params_.subset_size);
    WritePod(out, static_cast<uint8_t>(klsh_params_.direction));
    WriteDatasetBinary(*klsh_anchors_, out);
  }
  banding_.Save(out);
  if (bits_ != nullptr) {
    bits_->Save(out, align_blob);
  } else if (ints_ != nullptr) {
    ints_->Save(out, align_blob);
  } else {
    bbits_->Save(out, align_blob);
  }
  WritePod(out, fp);  // End marker: catches truncated tails.
  if (!out) throw IndexError("index save: stream write failed");
}

void PersistentIndex::SaveFile(const std::string& path,
                               uint32_t format_version) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw IndexError("index save: cannot open " + path);
  Save(f, format_version);
}

std::unique_ptr<PersistentIndex> PersistentIndex::Load(std::istream& in,
                                                       bool expect_eof) {
  return LoadInternal(in, expect_eof, /*mapped_base=*/nullptr,
                      /*mapped_size=*/0);
}

std::unique_ptr<PersistentIndex> PersistentIndex::LoadInternal(
    std::istream& in, bool expect_eof, const char* mapped_base,
    size_t mapped_size) {
  try {
    char magic[sizeof(kIndexMagic)];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
      throw IndexError("index load: bad magic (not a bayeslsh index, or "
                       "written on an incompatible platform)");
    }
    const auto version = ReadPod<uint32_t>(in, "index header: version");
    if (version < kIndexMinFormatVersion ||
        version > kIndexFormatVersion) {
      throw IndexError("index load: unsupported format version " +
                       std::to_string(version) + " (this build reads " +
                       std::to_string(kIndexMinFormatVersion) + ".." +
                       std::to_string(kIndexFormatVersion) + ")");
    }
    if (mapped_base != nullptr && version < 2) {
      throw IndexError(
          "index load: zero-copy (mmap) loading requires a format v2 "
          "index; this file is v" + std::to_string(version) +
          " — load and re-save it to upgrade");
    }
    std::unique_ptr<PersistentIndex> index(new PersistentIndex());
    const auto measure_tag = ReadPod<uint8_t>(in, "index header: measure");
    index->measure_ = MeasureFromTag(measure_tag);
    if (measure_tag >= kFirstV3MeasureTag && version < 3) {
      throw IndexError("index header: measure tag " +
                       std::to_string(measure_tag) +
                       " requires format version 3");
    }
    const auto sig_kind = ReadPod<uint8_t>(in, "index header: kind");
    index->bbit_ = ReadPod<uint8_t>(in, "index header: bbit");
    // Policy since v1: the reserved byte must be zero. It is outside the
    // fingerprint chain, so without this check a flipped reserved byte
    // would load silently — and a future format that assigns it meaning
    // could not trust old writers to have zeroed it.
    const auto reserved = ReadPod<uint8_t>(in, "index header: reserved");
    if (reserved != 0) {
      throw IndexError(
          "index header: reserved byte must be zero (got " +
          std::to_string(reserved) + ")");
    }
    index->seed_ = ReadPod<uint64_t>(in, "index header: seed");
    index->threshold_ = ReadPod<double>(in, "index header: threshold");
    index->k_ = ReadPod<uint32_t>(in, "index header: hashes_per_band");
    index->l_ = ReadPod<uint32_t>(in, "index header: num_bands");
    const auto stored_fp =
        ReadPod<uint64_t>(in, "index header: fingerprint");

    // Signature kind must cohere with the measure before any store is
    // constructed.
    if (index->bbit_ != 0 && index->measure_ != Measure::kJaccard) {
      throw IndexError("index header: b-bit width is Jaccard-only");
    }
    const auto kind = static_cast<SignatureKind>(sig_kind);
    if ((kind == SignatureKind::kBbitPacked) !=
        (index->bbit_ != 0 && IsValidBbitWidth(index->bbit_))) {
      throw IndexError("index header: inconsistent b-bit width");
    }
    if (kind != index->signature_kind()) {
      throw IndexError("index header: signature kind does not match the "
                       "measure");
    }

    index->data_ = ReadDatasetBinary(in);
    if (index->Fingerprint(version) != stored_fp) {
      throw IndexError("index load: config fingerprint mismatch (file "
                       "corrupt, or header and contents disagree)");
    }
    // v3 KLSH measure-config section (kernel spec + family shape +
    // anchors) — read before the banding so the stores below can rebuild
    // the hash family the file's signatures came from.
    if (index->measure_ == Measure::kKernelCosine) {
      const auto ktag = ReadPod<uint8_t>(in, "klsh section: kernel tag");
      if (ktag > static_cast<uint8_t>(KernelTag::kChiSquare)) {
        throw IndexError("klsh section: unknown kernel tag " +
                         std::to_string(ktag));
      }
      index->kernel_spec_.tag = static_cast<KernelTag>(ktag);
      index->kernel_spec_.gamma =
          ReadPod<double>(in, "klsh section: gamma");
      index->klsh_params_.num_anchors =
          ReadPod<uint32_t>(in, "klsh section: num_anchors");
      index->klsh_params_.subset_size =
          ReadPod<uint32_t>(in, "klsh section: subset_size");
      const auto dir = ReadPod<uint8_t>(in, "klsh section: direction");
      if (dir > static_cast<uint8_t>(KlshDirection::kSubsetClt)) {
        throw IndexError("klsh section: unknown direction " +
                         std::to_string(dir));
      }
      index->klsh_params_.direction = static_cast<KlshDirection>(dir);
      Dataset anchors = ReadDatasetBinary(in);
      if (anchors.num_vectors() == 0 ||
          anchors.num_vectors() != index->klsh_params_.num_anchors) {
        throw IndexError("klsh section: anchor count disagrees with the "
                         "section header");
      }
      index->klsh_anchors_ =
          std::make_shared<const Dataset>(std::move(anchors));
      try {
        index->kernel_ = MakeKernel(index->kernel_spec_);
      } catch (const std::invalid_argument& e) {
        throw IndexError(std::string("klsh section: ") + e.what());
      }
    }
    index->banding_ = BandingIndex::Load(in, index->data_.num_vectors());
    if (index->banding_.num_bands() != index->l_ ||
        index->banding_.hashes_per_band() != index->k_) {
      throw IndexError("index load: banding section shape disagrees with "
                       "the header");
    }

    const Dataset& d = index->data_;
    const uint64_t verify_seed = VerificationSeed(index->seed_);
    const bool padded = version >= 2;
    switch (kind) {
      case SignatureKind::kSrpBits:
        index->verify_gauss_ =
            std::make_shared<ImplicitGaussianSource>(verify_seed);
        index->bits_ = std::make_unique<BitSignatureStore>(
            &d, SrpHasher(index->verify_gauss_.get()));
        break;
      case SignatureKind::kKlshBits: {
        index->klsh_cache_ = std::make_shared<KlshRowCache>();
        KlshParams kp = index->klsh_params_;
        kp.seed = verify_seed;
        index->verify_klsh_ = std::shared_ptr<const KlshHasher>(
            new KlshHasher(KlshHasher::FromAnchors(
                Dataset(*index->klsh_anchors_), index->kernel_.get(),
                kp)));
        index->bits_ = std::make_unique<BitSignatureStore>(
            &d, std::make_shared<KlshChunkHasher>(index->verify_klsh_,
                                                  index->klsh_cache_, &d));
        break;
      }
      case SignatureKind::kMinwiseInts:
        index->ints_ = std::make_unique<IntSignatureStore>(
            &d, MinwiseHasher(verify_seed));
        break;
      case SignatureKind::kIcwsInts:
        index->ints_ = std::make_unique<IntSignatureStore>(
            &d, std::make_shared<IcwsChunkHasher>(
                    IcwsHasher(verify_seed)));
        break;
      case SignatureKind::kPstableInts: {
        if (!(index->threshold_ > 0.0)) {
          throw IndexError("index header: Euclidean radius must be > 0");
        }
        const double width = 2.0 * index->threshold_;
        index->ints_ = std::make_unique<IntSignatureStore>(
            &d, std::make_shared<PstableChunkHasher>(
                    PstableHasher(verify_seed, width)));
        break;
      }
      case SignatureKind::kBbitPacked:
        index->bbits_ = std::make_unique<BbitSignatureStore>(
            &d, MinwiseHasher(verify_seed), index->bbit_);
        break;
    }
    if (index->bits_ != nullptr) {
      if (mapped_base != nullptr) {
        index->bits_->LoadViews(in, mapped_base, mapped_size);
      } else {
        index->bits_->Load(in, padded);
      }
    } else if (index->ints_ != nullptr) {
      if (mapped_base != nullptr) {
        index->ints_->LoadViews(in, mapped_base, mapped_size);
      } else {
        index->ints_->Load(in, padded);
      }
    } else {
      if (mapped_base != nullptr) {
        index->bbits_->LoadViews(in, mapped_base, mapped_size);
      } else {
        index->bbits_->Load(in, padded);
      }
    }

    const auto end_marker = ReadPod<uint64_t>(in, "index end marker");
    if (end_marker != stored_fp) {
      throw IndexError("index load: end marker mismatch (truncated or "
                       "corrupt tail)");
    }
    if (expect_eof && in.peek() != std::istream::traits_type::eof()) {
      throw IndexError("index load: trailing bytes after the end marker");
    }
    return index;
  } catch (const IndexError&) {
    throw;
  } catch (const IoError& e) {
    // Section readers (dataset, banding, signatures) throw plain IoError;
    // surface everything under the one index-load error type.
    throw IndexError(std::string("index load: ") + e.what());
  }
}

std::unique_ptr<PersistentIndex> PersistentIndex::LoadFile(
    const std::string& path) {
  try {
    RequireReadableDataFile(path);
  } catch (const IoError& e) {
    throw IndexError(std::string("index load: ") + e.what());
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IndexError("index load: cannot open " + path);
  return Load(f);
}

std::unique_ptr<PersistentIndex> PersistentIndex::LoadFileMmap(
    const std::string& path) {
#if BAYESLSH_HAS_MMAP
  try {
    RequireReadableDataFile(path);
  } catch (const IoError& e) {
    throw IndexError(std::string("index load: ") + e.what());
  }
  auto mapping = std::make_unique<MappedFile>(path);
  MemoryStreambuf buf(mapping->data, mapping->size);
  std::istream in(&buf);
  auto index = LoadInternal(in, /*expect_eof=*/true, mapping->data,
                            mapping->size);
  index->mapping_ = std::move(mapping);
  return index;
#else
  // No mmap on this platform: plain copying load, identical results.
  return LoadFile(path);
#endif
}

}  // namespace bayeslsh
