// Sharded serving front-end: K DynamicIndex shards behind one query
// router, with graceful degradation as a first-class contract.
//
// `QueryBatch` shards one batch inside one process; the
// millions-of-users shape (ROADMAP) is a hash-partitioned corpus across
// K independent index shards behind a router that fans out each query,
// merges top-k across shards, and *degrades* instead of hanging when a
// shard is slow or dead:
//
//            Add(v) / Remove(id)            Query(q) / QueryTopK / Batch
//                  |                                     |
//            ShardOfId(seed,id,K)                   fan-out to K
//                  |                            (skip open breakers)
//                  v                                     v
//        +-------+-------+-------+        +-------+-------+-------+
//        |shard 0|shard 1|  ...  |        |shard 0|shard 1|  ...  |
//        | Dyn   | Dyn   |       |        |  exec |  exec |       |
//        | Index | Index |       |        | thread| thread|       |
//        +-------+-------+-------+        +---+---+---+---+-------+
//                                             |       |
//                                   collect with per-shard timeout
//                                   and per-query deadline; merge
//                                   (sim desc, id asc); truncate k
//
// Partitioning. Every logical id is assigned by the router (dense,
// monotonically increasing, never reused — the same contract as
// DynamicIndex) and placed on shard ShardOfId(seed, id, K), a seeded
// Mix64 hash. Signatures are pure functions of (seed, row content) and
// per-candidate BayesLSH verification depends only on (query, candidate)
// — never on other candidates or their shard — so a healthy K-shard
// index answers every query *identically* to a single unsharded index
// over the same corpus: the per-shard result lists are disjoint subsets
// of the unsharded result list, and the merge re-sorts them with the
// same (sim desc, id asc) order (asserted byte-for-byte by
// tests/degraded_serve_test.cc for SRP/minwise/b-bit at 1 and 8
// threads).
//
// Degradation contract (the point of this layer):
//   - Per-query deadline (ServeOptions::deadline_seconds): the router
//     stops collecting when the budget expires and returns the merged
//     results of the shards that HAVE answered, stats flagged
//     deadline_expired with shards_answered < shards_total. The answer
//     is exact over the answered shards and silent about the rest — the
//     anytime shape of BayesLSH's incremental pruning at the router
//     level.
//   - Per-shard health: each shard has a consecutive-failure
//     CircuitBreaker (core/serve_control.h). Shard errors and per-shard
//     timeouts count as failures; an open breaker is skipped instantly
//     (no waiting on a known-dead shard), and after the backoff a single
//     half-open probe rides the next query — success restores the shard
//     to full service.
//   - A wedged shard hangs only its own executor thread; the router
//     times out, degrades the answer, and keeps serving.
// Admission control (per-client token buckets + bounded in-flight depth)
// lives one level up, in the serve front-end (tools/bayeslsh_cli.cc
// `serve`), because "client" is a protocol notion; the primitives are in
// core/serve_control.h.
//
// Concurrency: Query/QueryTopK/QueryBatch are safe from any number of
// threads (the router fan-out state is per-call; shard executors are
// internally synchronized). Add/Remove serialize against each other and
// against the id map reads inside queries via a shared_mutex, exactly as
// in DynamicIndex. The destructor shuts down the fault injector (waking
// wedged executors) and joins all executor threads.

#ifndef BAYESLSH_CORE_SHARDED_INDEX_H_
#define BAYESLSH_CORE_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/dynamic_index.h"
#include "core/index_io.h"
#include "core/query_search.h"
#include "core/serve_control.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

struct ShardedIndexConfig {
  // Number of shards K (>= 1; 1 is a valid degenerate deployment).
  uint32_t num_shards = 2;

  // Serving threshold / verification mode / threads, forwarded to every
  // shard's DynamicIndexConfig (threshold 0 = the build threshold).
  double threshold = 0.0;
  bool exact_verification = false;
  uint32_t num_threads = 1;

  // Per-shard circuit breaker parameters.
  BreakerConfig breaker;

  // Upper bound on waiting for any single shard's sub-result, even
  // without a query deadline; a shard exceeding it counts a breaker
  // failure and the query degrades. 0 = wait forever (a wedged shard
  // then only degrades queries that carry their own deadline).
  double shard_timeout_seconds = 0.0;
};

// Per-query serving options.
struct ServeOptions {
  // Wall-clock budget for the whole fan-out; expiry returns the current
  // best (partial) results. 0 = no deadline.
  double deadline_seconds = 0.0;
};

// The health snapshot reported per shard (see shard_state()).
struct ShardState {
  BreakerState breaker = BreakerState::kClosed;
  uint32_t consecutive_failures = 0;
  uint32_t num_live = 0;  // Live logical ids routed to this shard.
};

class ShardedIndex {
 public:
  // Partitions `data` row-by-row (row i gets logical id i, lands on
  // ShardOfId(build.seed, i, K)) and builds one frozen PersistentIndex +
  // DynamicIndex per shard with the same build config — so every shard
  // agrees on (measure, seed, banding shape, bbit) and signatures are
  // shard-independent. Throws std::invalid_argument for num_shards == 0.
  ShardedIndex(Dataset data, const IndexBuildConfig& build,
               const ShardedIndexConfig& cfg);

  ~ShardedIndex();
  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  // The partitioning function: which shard owns logical id `id` in a
  // K-shard deployment seeded with `seed`. Pure; exposed so tests can
  // construct cross-shard scenarios deterministically.
  static uint32_t ShardOfId(uint64_t seed, uint32_t id, uint32_t num_shards);

  // Routed mutations: the router assigns the next logical id (dense,
  // monotonic, never reused), forwards to the owning shard, and keeps
  // the global<->shard-local id mapping. Same argument contract as
  // DynamicIndex::Add/Remove. Mutations bypass breakers and deadlines —
  // durability belongs to the write path, degradation to the read path.
  uint32_t Add(const SparseVectorView& v);
  bool Remove(uint32_t id);
  bool Contains(uint32_t id) const;

  // Fan-out threshold query: all live rows x with s(x, q) >= threshold
  // across answered shards, merged (sim desc, ties by ascending logical
  // id) — identical to a single unsharded index when all K shards
  // answer. stats (when given) receives the merged shard stats plus the
  // robustness counters (QueryStats: shards_total/shards_answered/
  // deadline_expired).
  std::vector<QueryMatch> Query(const SparseVectorView& q,
                                QueryStats* stats = nullptr,
                                const ServeOptions& opts = {}) const;

  // The k best live matches across answered shards; merged BEFORE
  // truncation, so shard boundaries can never displace a better match.
  std::vector<QueryMatch> QueryTopK(const SparseVectorView& q, uint32_t k,
                                    QueryStats* stats = nullptr,
                                    const ServeOptions& opts = {}) const;

  // Batched serving: slot i answers queries[i]. One fan-out round-trip
  // per shard for the whole batch (each shard's executor runs its own
  // QueryBatch), so the deadline and breaker accounting apply once per
  // shard, not once per query. top_k != 0 truncates per query after the
  // merge.
  std::vector<std::vector<QueryMatch>> QueryBatch(
      std::span<const SparseVectorView> queries, QueryStats* stats = nullptr,
      uint32_t top_k = 0, const ServeOptions& opts = {}) const;

  // Drains every shard's background compaction. The bounded overload
  // returns false if any shard's compaction was still running when its
  // share of the timeout expired — the server drain path uses it so a
  // wedged compaction cannot hang shutdown.
  void WaitForCompaction();
  bool WaitForCompaction(double timeout_seconds);

  // Fault injection hook for tests and the open-loop bench; applied by
  // every shard executor before it runs a sub-query.
  ShardFaultInjector& fault_injector() const;

  // Health snapshot of one shard at `now` (seconds on the router's
  // steady clock — pass Now()).
  ShardState shard_state(uint32_t shard) const;
  double Now() const;

  uint32_t num_shards() const;
  Measure measure() const;
  uint32_t num_dims() const;
  uint32_t num_live() const;
  uint64_t seed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_SHARDED_INDEX_H_
