#include "core/pipeline.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "candgen/allpairs.h"
#include "candgen/candidates.h"
#include "candgen/prefix_filter_join.h"
#include "common/prng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/classical.h"
#include "core/index_io.h"
#include "core/parallel_verify.h"
#include "lsh/minwise_hasher.h"
#include "lsh/srp_hasher.h"
#include "stats/beta_distribution.h"
#include "vec/transforms.h"

namespace bayeslsh {

uint64_t GenerationSeed(uint64_t master_seed) {
  return Mix64(master_seed, 0xC0DEC0DEULL);
}

uint64_t VerificationSeed(uint64_t master_seed) {
  return Mix64(master_seed, 0xFACEFEEDULL);
}

namespace {

bool IsCosineLike(Measure m) {
  return m == Measure::kCosine || m == Measure::kBinaryCosine;
}

uint32_t DefaultRoundHashes(Measure m) { return IsCosineLike(m) ? 32 : 16; }
uint32_t DefaultMaxHashes(Measure m) { return IsCosineLike(m) ? 4096 : 512; }
uint32_t DefaultLiteHashes(Measure m) { return IsCosineLike(m) ? 128 : 64; }
uint32_t DefaultMleHashes(Measure m) { return IsCosineLike(m) ? 2048 : 360; }

// Resolves the 0-means-default fields against the measure.
BayesLshParams ResolveBayesParams(const PipelineConfig& c) {
  BayesLshParams p = c.bayes;
  if (p.hashes_per_round == 0) p.hashes_per_round = DefaultRoundHashes(c.measure);
  if (p.max_hashes == 0) p.max_hashes = DefaultMaxHashes(c.measure);
  // Round the budget to whole rounds.
  p.max_hashes -= p.max_hashes % p.hashes_per_round;
  return p;
}

// Fits the Jaccard Beta prior from a uniform sample of candidate pairs,
// as recommended in paper §4.1.
//
// One robustness addition over the paper: the fitted prior's strength
// (alpha + beta, the "equivalent pseudo-hash count") is capped. Candidate
// sets dominated by near-zero similarities — AllPairs feeds routinely are —
// produce method-of-moments fits with alpha + beta in the hundreds, a prior
// so opinionated that no realistic number of hash matches can rescue a true
// pair from pruning (recall collapses). Capping preserves the fitted mean
// while keeping the paper's "the data swamps the prior" premise
// (see Appendix A of the paper) actually true.
constexpr double kMaxPriorStrength = 5.0;

BetaDistribution FitJaccardPrior(const Dataset& data,
                                 const CandidateList& candidates,
                                 uint32_t sample_size, uint64_t seed) {
  if (sample_size == 0 || candidates.pairs.empty()) {
    return BetaDistribution(1.0, 1.0);
  }
  Xoshiro256StarStar rng(Mix64(seed, 0xBE7A0F17ULL));
  std::vector<double> sims;
  sims.reserve(sample_size);
  const uint64_t total = candidates.pairs.size();
  for (uint32_t i = 0; i < sample_size; ++i) {
    const auto& [a, b] = candidates.pairs[rng.NextBounded(total)];
    sims.push_back(ExactSimilarity(data, a, b, Measure::kJaccard));
  }
  const BetaDistribution fit = BetaDistribution::FitMethodOfMoments(sims);
  const double strength = fit.alpha() + fit.beta();
  if (strength <= kMaxPriorStrength) return fit;
  const double scale = kMaxPriorStrength / strength;
  return BetaDistribution(fit.alpha() * scale, fit.beta() * scale);
}

// Checks warm-start compatibility once per run and returns the index when
// adoption is applicable for this measure (see the warm_index field docs).
const PersistentIndex* ResolveWarmIndex(const PipelineConfig& config,
                                        const Dataset& data) {
  const PersistentIndex* warm = config.warm_index;
  if (warm == nullptr) return nullptr;
  if (warm->measure() != config.measure) {
    throw std::invalid_argument(
        "PipelineConfig: warm_index measure does not match the run");
  }
  if (warm->seed() != config.seed) {
    throw std::invalid_argument(
        "PipelineConfig: warm_index seed does not match the run (adopted "
        "signatures would disagree with freshly hashed ones)");
  }
  if (warm->data().num_vectors() != data.num_vectors() ||
      warm->data().num_dims() != data.num_dims() ||
      warm->data().nnz() != data.nnz()) {
    throw std::invalid_argument(
        "PipelineConfig: warm_index covers a different collection (vector "
        "count, dimensionality or non-zero count differs)");
  }
  // Binary cosine hashes the normalized view; indexes hash raw rows.
  if (config.measure == Measure::kBinaryCosine) return nullptr;
  return warm;
}

}  // namespace

std::string AlgorithmName(const PipelineConfig& config) {
  if (config.generator == GeneratorKind::kAllPairs &&
      config.verifier == VerifierKind::kExact) {
    return "AllPairs";
  }
  const std::string gen =
      config.generator == GeneratorKind::kAllPairs ? "AP" : "LSH";
  switch (config.verifier) {
    case VerifierKind::kExact:
      return "LSH";  // Exact-verification LSH: the paper's plain "LSH".
    case VerifierKind::kMle:
      return gen == "LSH" ? "LSH Approx" : "AP+MLE";
    case VerifierKind::kBayesLsh:
      return gen + "+BayesLSH";
    case VerifierKind::kBayesLshLite:
      return gen + "+BayesLSH-Lite";
  }
  return "unknown";
}

PipelineResult RunPipeline(const Dataset& data, const PipelineConfig& config) {
  PipelineResult result;
  result.algorithm = AlgorithmName(config);
  WallTimer total_timer;

  // Shared worker pool for both phases (null = sequential paper-faithful
  // execution). Results are identical either way; see the config comment.
  const uint32_t num_threads = ResolveNumThreads(config.num_threads);
  result.threads_used = num_threads;
  std::unique_ptr<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (num_threads > 1) {
    pool_storage = std::make_unique<ThreadPool>(num_threads);
    pool = pool_storage.get();
  }

  const Measure measure = config.measure;
  const double t = config.threshold;
  const BayesLshParams bayes = ResolveBayesParams(config);
  const uint32_t lite_h = config.lite_max_hashes != 0
                              ? config.lite_max_hashes
                              : DefaultLiteHashes(measure);
  const uint32_t mle_n = config.mle_hashes != 0 ? config.mle_hashes
                                                : DefaultMleHashes(measure);

  // For binary cosine, AllPairs and SRP operate on the weighted view.
  // (SRP signs are scale-invariant, so hashing the plain binary rows would
  // be equivalent; using one view keeps the code paths uniform.)
  const bool needs_weighted_view = measure == Measure::kBinaryCosine;
  Dataset weighted_view;
  const Dataset* cosine_data = &data;
  if (needs_weighted_view) {
    weighted_view = BinarizeNormalized(data);
    cosine_data = &weighted_view;
  }

  // --- Special case: native exact AllPairs join. ---
  if (config.generator == GeneratorKind::kAllPairs &&
      config.verifier == VerifierKind::kExact) {
    WallTimer timer;
    if (IsCosineLike(measure)) {
      result.pairs = AllPairsJoin(*cosine_data, t, nullptr, pool);
    } else {
      result.pairs = PrefixFilterJoin(data, t, Measure::kJaccard, nullptr,
                                      pool);
    }
    result.generate_seconds = timer.Seconds();
    result.total_seconds = total_timer.Seconds();
    return result;
  }

  // --- Phase 1: candidate generation. ---
  const uint64_t gen_seed = GenerationSeed(config.seed);
  CandidateList candidates;
  WallTimer gen_timer;

  // Lazily created signature stores (only for the paths that need them).
  std::shared_ptr<const GaussianSource> gen_gauss, verify_gauss;
  std::unique_ptr<BitSignatureStore> gen_bits;
  std::unique_ptr<IntSignatureStore> gen_ints;
  GaussianSourceCache local_cache(cosine_data->num_dims(), 0);
  GaussianSourceCache* gauss_cache =
      config.gaussian_cache != nullptr ? config.gaussian_cache : &local_cache;

  if (config.generator == GeneratorKind::kAllPairs) {
    if (IsCosineLike(measure)) {
      candidates = AllPairsCandidates(*cosine_data, t, nullptr, pool);
    } else {
      candidates = PrefixFilterCandidates(data, t, Measure::kJaccard,
                                          nullptr, pool);
    }
  } else {
    if (IsCosineLike(measure)) {
      gen_gauss = gauss_cache->Get(gen_seed);
      gen_bits = std::make_unique<BitSignatureStore>(
          cosine_data, SrpHasher(gen_gauss.get()));
      candidates = CosineLshCandidates(gen_bits.get(), t, config.banding,
                                       pool);
      result.gen_hashes_computed = gen_bits->bits_computed();
    } else {
      gen_ints = std::make_unique<IntSignatureStore>(
          &data, MinwiseHasher(gen_seed));
      candidates = JaccardLshCandidates(gen_ints.get(), t, config.banding,
                                        pool);
      result.gen_hashes_computed = gen_ints->hashes_computed();
    }
  }
  result.generate_seconds = gen_timer.Seconds();
  result.candidates = candidates.size();
  result.raw_candidates = candidates.raw_emitted;

  // --- Phase 2: verification. ---
  const uint64_t verify_seed = VerificationSeed(config.seed);
  WallTimer verify_timer;

  // Warm start (see PipelineConfig::warm_index): adopt prefetched
  // verification signatures after the store is constructed. CopyRowsFrom
  // never touches the tally, so verify_hashes_computed keeps reporting
  // only the hashing this run actually performed.
  const PersistentIndex* warm = ResolveWarmIndex(config, data);
  auto warm_bits = [&](BitSignatureStore* s) {
    // Indexes hash with the exact implicit Gaussian source; a run whose
    // cache supplies quantized tables draws slightly different bits, so
    // adoption must cold-start there to keep warm == cold results.
    if (warm != nullptr && warm->bit_store() != nullptr &&
        dynamic_cast<const ImplicitGaussianSource*>(verify_gauss.get()) !=
            nullptr) {
      s->CopyRowsFrom(*warm->bit_store());
    }
  };
  auto warm_ints = [&](IntSignatureStore* s) {
    if (warm != nullptr && warm->int_store() != nullptr) {
      s->CopyRowsFrom(*warm->int_store());
    }
  };

  switch (config.verifier) {
    case VerifierKind::kExact: {
      result.pairs =
          ExactVerify(data, candidates.pairs, t, measure, nullptr, pool);
      break;
    }
    case VerifierKind::kMle: {
      if (IsCosineLike(measure)) {
        verify_gauss = gauss_cache->Get(verify_seed);
        BitSignatureStore store(cosine_data, SrpHasher(verify_gauss.get()));
        warm_bits(&store);
        result.pairs = MleVerifyCosine(&store, candidates.pairs, t, mle_n,
                                       nullptr, pool);
        result.verify_hashes_computed = store.bits_computed();
      } else {
        IntSignatureStore store(&data, MinwiseHasher(verify_seed));
        warm_ints(&store);
        result.pairs = MleVerifyJaccard(&store, candidates.pairs, t, mle_n,
                                        nullptr, pool);
        result.verify_hashes_computed = store.hashes_computed();
      }
      break;
    }
    case VerifierKind::kBayesLsh: {
      if (IsCosineLike(measure)) {
        verify_gauss = gauss_cache->Get(verify_seed);
        BitSignatureStore store(cosine_data, SrpHasher(verify_gauss.get()));
        warm_bits(&store);
        const CosinePosterior model(t);
        result.pairs = BayesLshVerifyParallel(model, &store, candidates.pairs,
                                              bayes, pool, &result.vstats);
        result.verify_hashes_computed = store.bits_computed();
      } else {
        IntSignatureStore store(&data, MinwiseHasher(verify_seed));
        warm_ints(&store);
        const JaccardPosterior model(
            t, FitJaccardPrior(data, candidates, config.prior_sample_size,
                               config.seed));
        result.pairs = BayesLshVerifyParallel(model, &store, candidates.pairs,
                                              bayes, pool, &result.vstats);
        result.verify_hashes_computed = store.hashes_computed();
      }
      break;
    }
    case VerifierKind::kBayesLshLite: {
      const uint32_t h = lite_h - lite_h % bayes.hashes_per_round;
      if (IsCosineLike(measure)) {
        verify_gauss = gauss_cache->Get(verify_seed);
        BitSignatureStore store(cosine_data, SrpHasher(verify_gauss.get()));
        warm_bits(&store);
        const CosinePosterior model(t);
        auto exact = [&](uint32_t a, uint32_t b) {
          return ExactSimilarity(data, a, b, measure);
        };
        result.pairs = BayesLshLiteVerifyParallel(model, &store,
                                                  candidates.pairs, h, exact,
                                                  t, bayes, pool,
                                                  &result.vstats);
        result.verify_hashes_computed = store.bits_computed();
      } else {
        IntSignatureStore store(&data, MinwiseHasher(verify_seed));
        warm_ints(&store);
        const JaccardPosterior model(
            t, FitJaccardPrior(data, candidates, config.prior_sample_size,
                               config.seed));
        auto exact = [&](uint32_t a, uint32_t b) {
          return ExactSimilarity(data, a, b, measure);
        };
        result.pairs = BayesLshLiteVerifyParallel(model, &store,
                                                  candidates.pairs, h, exact,
                                                  t, bayes, pool,
                                                  &result.vstats);
        result.verify_hashes_computed = store.hashes_computed();
      }
      break;
    }
  }
  result.verify_seconds = verify_timer.Seconds();

  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.a != b.a ? a.a < b.a : a.b < b.b;
            });
  result.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace bayeslsh
