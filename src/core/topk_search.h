// Top-k all-pairs similarity search: the "top-k most similar pairs"
// variant of the problem named in paper §1 ("the user may be either
// interested in the top-k most similar objects ... or all objects with
// s(x, y) > t"), built on top of the thresholded pipeline.
//
// BayesLSH is intrinsically thresholded — the prune test needs a t — so
// top-k is implemented as an adaptive threshold descent: run the pipeline
// at a high threshold, and while fewer than k pairs survive, lower the
// threshold geometrically toward a user floor. High-threshold runs are
// cheap (few candidates survive generation, pruning kills the rest
// early), so the descent costs little more than the final iteration; the
// iteration count is reported for the curious.
//
// The returned pairs carry *exact* similarities (the k survivors are
// re-verified exactly — k exact computations, negligible), so the ranking
// among returned pairs is exact; completeness is probabilistic, governed
// by the generator's expected false-negative rate and the verifier's ε,
// exactly as for threshold search.

#ifndef BAYESLSH_CORE_TOPK_SEARCH_H_
#define BAYESLSH_CORE_TOPK_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/pipeline.h"
#include "sim/brute_force.h"
#include "vec/dataset.h"

namespace bayeslsh {

struct TopKConfig {
  Measure measure = Measure::kCosine;
  GeneratorKind generator = GeneratorKind::kAllPairs;
  uint32_t k = 100;

  // The descent starts here and never searches below the floor: pairs less
  // similar than floor_threshold are never reported, even if fewer than k
  // pairs exist above it. (A floor is required — LSH cannot retrieve
  // near-orthogonal pairs efficiently, and a top-k of dissimilar pairs is
  // rarely what anyone wants.)
  double start_threshold = 0.9;
  double floor_threshold = 0.3;

  // Threshold decay per descent step (t <- max(floor, t * decay)).
  double decay = 0.8;

  // Verification knobs, as in PipelineConfig.
  BayesLshParams bayes = {.hashes_per_round = 0, .max_hashes = 0};
  LshBandingParams banding;
  uint64_t seed = 42;

  // Worker threads for the underlying pipeline runs and the final exact
  // re-verification (as in PipelineConfig: 0 = hardware, 1 = sequential).
  uint32_t num_threads = 1;

  // Optional shared Gaussian tables (see PipelineConfig); reused across
  // the descent iterations when provided.
  GaussianSourceCache* gaussian_cache = nullptr;

  // Optional warm start from a persistent index (core/index_io.h): every
  // descent iteration adopts the index's prefetched verification
  // signatures (see PipelineConfig::warm_index for the compatibility
  // rules). Results are identical with or without. The
  // TopKAllPairs(PersistentIndex&, ...) overload sets this automatically.
  const PersistentIndex* warm_index = nullptr;
};

struct TopKStats {
  uint32_t iterations = 0;        // Pipeline runs performed.
  double final_threshold = 0.0;   // Threshold of the last run.
  uint64_t candidates = 0;        // Candidates in the last run.
  double total_seconds = 0.0;
};

// The k most similar pairs with similarity >= floor_threshold, sorted by
// decreasing exact similarity (ties by (a, b)). May return fewer than k
// pairs when fewer exist above the floor (or when the randomized
// generator misses some — same guarantees as threshold search).
std::vector<ScoredPair> TopKAllPairs(const Dataset& data,
                                     const TopKConfig& config,
                                     TopKStats* stats = nullptr);

// Warm-start variant: runs the descent over the index's own collection,
// adopting its verification signatures in every iteration. config.measure
// and config.seed must match the index (std::invalid_argument otherwise,
// from the underlying pipeline runs).
std::vector<ScoredPair> TopKAllPairs(const PersistentIndex& index,
                                     const TopKConfig& config,
                                     TopKStats* stats = nullptr);

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_TOPK_SEARCH_H_
