#include "core/topk_search.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "sim/similarity.h"

namespace bayeslsh {

std::vector<ScoredPair> TopKAllPairs(const Dataset& data,
                                     const TopKConfig& config,
                                     TopKStats* stats) {
  assert(config.k > 0);
  assert(config.floor_threshold > 0.0 && config.floor_threshold < 1.0);
  assert(config.start_threshold >= config.floor_threshold);
  assert(config.decay > 0.0 && config.decay < 1.0);

  WallTimer timer;
  TopKStats local;

  PipelineConfig run;
  run.measure = config.measure;
  run.generator = config.generator;
  // Estimation-mode verification: the descent only needs "enough pairs",
  // and the survivors get exact similarities below anyway.
  run.verifier = VerifierKind::kBayesLsh;
  run.bayes = config.bayes;
  run.banding = config.banding;
  run.seed = config.seed;
  run.num_threads = config.num_threads;
  run.gaussian_cache = config.gaussian_cache;
  run.warm_index = config.warm_index;

  std::vector<ScoredPair> survivors;
  double t = config.start_threshold;
  while (true) {
    run.threshold = t;
    PipelineResult result = RunPipeline(data, run);
    ++local.iterations;
    local.final_threshold = t;
    local.candidates = result.candidates;
    survivors = std::move(result.pairs);
    if (survivors.size() >= config.k || t <= config.floor_threshold) break;
    t = std::max(config.floor_threshold, t * config.decay);
  }

  // Exact similarities for the survivors; the estimate-based pipeline
  // output may include pairs below the floor (δ slack) — drop those.
  // Sharded across a pool when configured (per-survivor work is
  // independent; the sort below canonicalizes the order).
  const uint32_t num_threads = ResolveNumThreads(config.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && survivors.size() >= 2 * num_threads) {
    pool = std::make_unique<ThreadPool>(num_threads);
  }
  std::vector<ScoredPair> rescored(survivors.size());
  ParallelFor(pool.get(), 0, survivors.size(), [&](uint64_t i) {
    const ScoredPair& p = survivors[i];
    rescored[i] = {p.a, p.b, ExactSimilarity(data, p.a, p.b, config.measure)};
  });
  std::vector<ScoredPair> exact;
  exact.reserve(survivors.size());
  for (const ScoredPair& p : rescored) {
    if (p.sim >= config.floor_threshold) exact.push_back(p);
  }
  std::sort(exact.begin(), exact.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.sim != y.sim) return x.sim > y.sim;
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  if (exact.size() > config.k) exact.resize(config.k);

  local.total_seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
  return exact;
}

std::vector<ScoredPair> TopKAllPairs(const PersistentIndex& index,
                                     const TopKConfig& config,
                                     TopKStats* stats) {
  TopKConfig warm = config;
  warm.warm_index = &index;
  return TopKAllPairs(index.data(), warm, stats);
}

}  // namespace bayeslsh
