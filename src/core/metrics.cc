#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/bit_ops.h"

namespace bayeslsh {

double Recall(const std::vector<ScoredPair>& output,
              const std::vector<ScoredPair>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<uint64_t> out_keys;
  out_keys.reserve(output.size() * 2);
  for (const ScoredPair& p : output) out_keys.insert(PairKey(p.a, p.b));
  uint64_t hit = 0;
  for (const ScoredPair& p : truth) {
    if (out_keys.contains(PairKey(p.a, p.b))) ++hit;
  }
  return static_cast<double>(hit) / truth.size();
}

double FalseNegativeRate(const std::vector<ScoredPair>& output,
                         const std::vector<ScoredPair>& truth) {
  return 1.0 - Recall(output, truth);
}

ErrorStats EstimateErrors(const Dataset& data, Measure measure,
                          const std::vector<ScoredPair>& output,
                          double custom_level) {
  ErrorStats s;
  s.pairs = output.size();
  if (output.empty()) return s;
  uint64_t gt_005 = 0, gt_custom = 0;
  double sum = 0.0;
  for (const ScoredPair& p : output) {
    const double exact = ExactSimilarity(data, p.a, p.b, measure);
    const double err = std::abs(p.sim - exact);
    sum += err;
    s.max_abs_error = std::max(s.max_abs_error, err);
    if (err > 0.05) ++gt_005;
    if (err > custom_level) ++gt_custom;
  }
  s.mean_abs_error = sum / output.size();
  s.frac_error_gt_005 = static_cast<double>(gt_005) / output.size();
  s.frac_error_gt_custom = static_cast<double>(gt_custom) / output.size();
  return s;
}

}  // namespace bayeslsh
