// End-to-end all-pairs similarity search pipelines: candidate generation ×
// verification, covering every algorithm the paper benchmarks.
//
//   generator \ verifier |  kExact   |  kMle       |  kBayesLsh     | kBayesLshLite
//   ---------------------+-----------+-------------+----------------+---------------
//   kAllPairs            |  AllPairs*|     —       | AP+BayesLSH    | AP+BayesLSH-Lite
//   kLsh                 |  LSH      | LSH Approx  | LSH+BayesLSH   | LSH+BayesLSH-Lite
//
//   * kAllPairs × kExact runs the native AllPairs join (its internal
//     verification with upper-bound pruning), not generate-then-verify —
//     matching how the baseline is deployed in the paper.
//
// PPJoin+ does not fit the generate/verify split (it is exact and
// prefix-organized); benchmarks call PpjoinJoin directly.
//
// Measure handling: kCosine expects L2-normalized real-valued rows;
// kJaccard and kBinaryCosine expect binary rows (values ignored). For
// kBinaryCosine the pipeline internally builds the 1/sqrt(len)-normalized
// view where AllPairs and SRP need weighted vectors.

#ifndef BAYESLSH_CORE_PIPELINE_H_
#define BAYESLSH_CORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "candgen/lsh_banding.h"
#include "common/thread_pool.h"
#include "core/bayes_lsh.h"
#include "lsh/gaussian_source.h"
#include "sim/brute_force.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

class PersistentIndex;  // core/index_io.h

enum class GeneratorKind { kAllPairs, kLsh };
enum class VerifierKind { kExact, kMle, kBayesLsh, kBayesLshLite };

struct PipelineConfig {
  Measure measure = Measure::kCosine;
  GeneratorKind generator = GeneratorKind::kAllPairs;
  VerifierKind verifier = VerifierKind::kBayesLsh;
  double threshold = 0.7;

  // ε / δ / γ and the per-round hash count for the BayesLSH verifiers.
  // bayes.hashes_per_round / bayes.max_hashes of 0 select per-measure
  // defaults (32 / 4096 for cosine bits, 16 / 512 for Jaccard ints).
  BayesLshParams bayes = {.hashes_per_round = 0, .max_hashes = 0};

  // BayesLSH-Lite hash budget h; 0 selects the paper defaults
  // (128 cosine / 64 Jaccard).
  uint32_t lite_max_hashes = 0;

  // Fixed hash count for kMle ("LSH Approx"); 0 selects the paper defaults
  // (2048 cosine / 360 Jaccard).
  uint32_t mle_hashes = 0;

  // Candidate generation (kLsh generator).
  LshBandingParams banding;

  // Jaccard prior: fit Beta by method-of-moments on the exact similarities
  // of this many randomly sampled candidates (0 = uniform prior).
  uint32_t prior_sample_size = 300;

  // Master seed; candidate-generation and verification hashes use
  // independent streams derived from it (see DESIGN.md §6).
  uint64_t seed = 42;

  // Worker threads for candidate generation and verification. 0 = all
  // hardware threads, 1 (the default) = the paper's single-threaded
  // execution. Results are pair-for-pair identical for every value — see
  // docs/ARCHITECTURE.md, "Concurrency model". The only quantities that
  // may vary with the thread count are instrumentation: hashing-overhead
  // tallies (bounded prefetch-horizon slack), cache hit/miss counters,
  // and generator-side skip counters (PrefixJoinStats::size_skipped).
  uint32_t num_threads = 1;

  // Optional shared Gaussian providers keyed by derived seed, letting a
  // benchmark reuse quantized tables across pipeline runs. May be null.
  GaussianSourceCache* gaussian_cache = nullptr;

  // Optional warm start from a persistent index (core/index_io.h): the
  // BayesLSH / Lite / MLE verifiers adopt copies of the index's prefetched
  // verification signatures instead of hashing from scratch. Results are
  // identical with or without (signatures are pure functions of
  // (seed, row)); only the verify_hashes_computed tally drops. The index
  // must cover the same collection (vector/dimension/non-zero counts),
  // measure and seed — a mismatch throws std::invalid_argument. Adoption
  // is skipped (cold start, same results) for kBinaryCosine — the
  // pipeline hashes the normalized view while indexes hash the raw binary
  // rows — for indexes whose signature kind differs from the verifier's
  // store (a b-bit index feeding a full-width minwise verifier), and for
  // cosine runs whose gaussian_cache supplies quantized tables (indexes
  // hash with the exact implicit source).
  const PersistentIndex* warm_index = nullptr;
};

struct PipelineResult {
  std::string algorithm;  // e.g. "LSH+BayesLSH".
  std::vector<ScoredPair> pairs;

  uint64_t candidates = 0;      // After dedup.
  uint64_t raw_candidates = 0;  // Before dedup (LSH multiplicity).

  double generate_seconds = 0.0;  // Candidate generation (incl. hashing).
  double verify_seconds = 0.0;    // Verification (incl. lazy hashing).
  double total_seconds = 0.0;

  uint64_t gen_hashes_computed = 0;     // Banding signature hashes.
  uint64_t verify_hashes_computed = 0;  // Verification signature hashes.

  uint32_t threads_used = 1;  // Resolved num_threads for this run.

  VerifyStats vstats;  // Populated by the BayesLSH verifiers.
};

// Human-readable algorithm name matching the paper's labels.
std::string AlgorithmName(const PipelineConfig& config);

// Runs one full pipeline on `data` (prepared per the measure conventions
// above).
PipelineResult RunPipeline(const Dataset& data, const PipelineConfig& config);

// Derived seeds for the two independent hash streams.
uint64_t GenerationSeed(uint64_t master_seed);
uint64_t VerificationSeed(uint64_t master_seed);

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_PIPELINE_H_
