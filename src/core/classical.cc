#include "core/classical.h"

#include <algorithm>

#include "core/parallel_verify.h"
#include "lsh/srp_hasher.h"

namespace bayeslsh {

namespace {

// Shared sharding driver: verify(idx, out, stats) appends idx's verdict.
// Shards are contiguous input ranges, so concatenating their outputs in
// shard order reproduces the sequential output exactly.
template <typename VerifyFn>
std::vector<ScoredPair> ShardedVerify(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, ThreadPool* pool,
    ClassicalStats* stats, const VerifyFn& verify) {
  ClassicalStats local;
  local.pairs_in = pairs.size();
  std::vector<ScoredPair> out;
  if (pool == nullptr || pool->num_threads() <= 1 ||
      pairs.size() < kMinPairsPerShard * pool->num_threads()) {
    for (size_t i = 0; i < pairs.size(); ++i) verify(i, &out, &local);
  } else {
    const uint32_t num_shards = pool->num_threads();
    struct Shard {
      std::vector<ScoredPair> out;
      ClassicalStats stats;
    };
    std::vector<Shard> shards(num_shards);
    pool->RunShards(pairs.size(),
                    [&](uint32_t s, uint64_t begin, uint64_t end) {
                      for (uint64_t i = begin; i < end; ++i) {
                        verify(i, &shards[s].out, &shards[s].stats);
                      }
                    });
    for (Shard& shard : shards) {
      out.insert(out.end(), shard.out.begin(), shard.out.end());
      local.accepted += shard.stats.accepted;
      local.hashes_compared += shard.stats.hashes_compared;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace

std::vector<ScoredPair> ExactVerify(
    const Dataset& data,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    Measure measure, ClassicalStats* stats, ThreadPool* pool) {
  return ShardedVerify(
      pairs, pool, stats,
      [&](size_t i, std::vector<ScoredPair>* out, ClassicalStats* st) {
        const auto& [a, b] = pairs[i];
        const double s = ExactSimilarity(data, a, b, measure);
        if (s >= threshold) {
          out->push_back({a, b, s});
          ++st->accepted;
        }
      });
}

std::vector<ScoredPair> MleVerifyCosine(
    BitSignatureStore* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    uint32_t num_hashes, ClassicalStats* stats, ThreadPool* pool) {
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        pairs.size() >= kMinPairsPerShard * pool->num_threads();
  if (parallel) {
    // Fixed verification depth: prefetching involved rows to num_hashes is
    // exactly what the sequential lazy path hashes, so the tally matches.
    store->AddBitsComputed(
        internal::PrefetchPairRows(store, pairs, num_hashes, pool));
  }
  return ShardedVerify(
      pairs, parallel ? pool : nullptr, stats,
      [&, parallel](size_t i, std::vector<ScoredPair>* out,
                    ClassicalStats* st) {
        const auto& [a, b] = pairs[i];
        const uint32_t m =
            parallel ? store->MatchCountReadOnly(a, b, 0, num_hashes)
                     : store->MatchCount(a, b, 0, num_hashes);
        st->hashes_compared += num_hashes;
        const double est = SrpRToCosine(static_cast<double>(m) / num_hashes);
        if (est >= threshold) {
          out->push_back({a, b, est});
          ++st->accepted;
        }
      });
}

std::vector<ScoredPair> MleVerifyJaccard(
    IntSignatureStore* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    uint32_t num_hashes, ClassicalStats* stats, ThreadPool* pool) {
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        pairs.size() >= kMinPairsPerShard * pool->num_threads();
  if (parallel) {
    store->AddHashesComputed(
        internal::PrefetchPairRows(store, pairs, num_hashes, pool));
  }
  return ShardedVerify(
      pairs, parallel ? pool : nullptr, stats,
      [&, parallel](size_t i, std::vector<ScoredPair>* out,
                    ClassicalStats* st) {
        const auto& [a, b] = pairs[i];
        const uint32_t m =
            parallel ? store->MatchCountReadOnly(a, b, 0, num_hashes)
                     : store->MatchCount(a, b, 0, num_hashes);
        st->hashes_compared += num_hashes;
        const double est = static_cast<double>(m) / num_hashes;
        if (est >= threshold) {
          out->push_back({a, b, est});
          ++st->accepted;
        }
      });
}

}  // namespace bayeslsh
