#include "core/classical.h"

#include "lsh/srp_hasher.h"

namespace bayeslsh {

std::vector<ScoredPair> ExactVerify(
    const Dataset& data,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    Measure measure, ClassicalStats* stats) {
  ClassicalStats local;
  local.pairs_in = pairs.size();
  std::vector<ScoredPair> out;
  for (const auto& [a, b] : pairs) {
    const double s = ExactSimilarity(data, a, b, measure);
    if (s >= threshold) {
      out.push_back({a, b, s});
      ++local.accepted;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<ScoredPair> MleVerifyCosine(
    BitSignatureStore* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    uint32_t num_hashes, ClassicalStats* stats) {
  ClassicalStats local;
  local.pairs_in = pairs.size();
  std::vector<ScoredPair> out;
  for (const auto& [a, b] : pairs) {
    const uint32_t m = store->MatchCount(a, b, 0, num_hashes);
    local.hashes_compared += num_hashes;
    const double est =
        SrpRToCosine(static_cast<double>(m) / num_hashes);
    if (est >= threshold) {
      out.push_back({a, b, est});
      ++local.accepted;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<ScoredPair> MleVerifyJaccard(
    IntSignatureStore* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, double threshold,
    uint32_t num_hashes, ClassicalStats* stats) {
  ClassicalStats local;
  local.pairs_in = pairs.size();
  std::vector<ScoredPair> out;
  for (const auto& [a, b] : pairs) {
    const uint32_t m = store->MatchCount(a, b, 0, num_hashes);
    local.hashes_compared += num_hashes;
    const double est = static_cast<double>(m) / num_hashes;
    if (est >= threshold) {
      out.push_back({a, b, est});
      ++local.accepted;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace bayeslsh
