#include "core/wal.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/prng.h"

namespace bayeslsh {
namespace {

constexpr char kWalMagic[8] = {'B', 'L', 'S', 'H', 'W', 'L', '1', 'E'};
constexpr uint64_t kWalMagicSize = sizeof(kWalMagic);

// Fragment types. Padding fills a block tail too small (or chosen too
// small) to hold a fragment; the other four are the LevelDB chunking.
enum WalFragmentType : uint8_t {
  kWalPadding = 0,
  kWalFull = 1,
  kWalFirst = 2,
  kWalMiddle = 3,
  kWalLast = 4,
};

// Checksum over (type, length, payload): a Mix64 chain folding the
// payload eight bytes at a time (the ragged tail word is zero-padded and
// folded together with its byte count, so truncating the payload always
// changes the sum). Seeded with a constant so an all-zero fragment does
// not checksum to a predictable small value.
uint64_t WalChecksum(uint8_t type, const uint8_t* payload, uint16_t length) {
  uint64_t h = Mix64(0x57414c63686b3031ULL,  // "WALchk01"
                     (static_cast<uint64_t>(type) << 32) | length);
  uint32_t i = 0;
  for (; i + 8 <= length; i += 8) {
    uint64_t word;
    std::memcpy(&word, payload + i, 8);
    h = Mix64(h, word);
  }
  if (i < length) {
    uint64_t word = 0;
    std::memcpy(&word, payload + i, length - i);
    h = Mix64(h, word, static_cast<uint64_t>(length - i));
  }
  return h;
}

struct WalFragmentHeader {
  uint64_t checksum;
  uint16_t length;
  uint8_t type;
};

WalFragmentHeader ParseHeader(const uint8_t* p) {
  WalFragmentHeader h;
  std::memcpy(&h.checksum, p, 8);
  std::memcpy(&h.length, p + 8, 2);
  h.type = p[10];
  return h;
}

// True when the bytes at `off` form a complete, checksum-valid record
// fragment (types 1..4) that fits inside its block. Used by the
// fail-closed scan: any such fragment beyond a damaged one proves the
// damage is mid-log, not a torn tail.
bool ValidFragmentAt(const std::vector<uint8_t>& data, uint64_t off) {
  if (off + kWalHeaderSize > data.size()) return false;
  WalFragmentHeader h = ParseHeader(data.data() + off);
  if (h.type < kWalFull || h.type > kWalLast) return false;
  uint64_t block_off = (off - kWalMagicSize) % kWalBlockSize;
  if (block_off + kWalHeaderSize + h.length > kWalBlockSize) return false;
  if (off + kWalHeaderSize + h.length > data.size()) return false;
  return WalChecksum(h.type, data.data() + off + kWalHeaderSize, h.length) ==
         h.checksum;
}

[[noreturn]] void FailClosed(const std::string& path, uint64_t offset) {
  throw WalError("wal replay: corrupt record at byte " +
                 std::to_string(offset) + " of '" + path +
                 "' with valid records beyond it; refusing to drop "
                 "acknowledged writes");
}

}  // namespace

WalReplayResult ReplayWal(
    const std::string& path,
    const std::function<void(std::span<const uint8_t>)>& on_record) {
  WalReplayResult result;

  std::vector<uint8_t> data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return result;  // Missing log: nothing acknowledged yet.
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    if (in.bad()) throw WalError("wal replay: read failed for '" + path + "'");
  }
  if (data.size() < kWalMagicSize) {
    // A crash can tear even the magic of a freshly created log; nothing
    // was acknowledged before the magic completed.
    result.tail_truncated = !data.empty();
    return result;
  }
  if (std::memcmp(data.data(), kWalMagic, kWalMagicSize) != 0) {
    throw WalError("wal replay: bad magic in '" + path +
                   "' (not a BLSHWL1E log)");
  }

  // Damage handler: decides torn tail (stop, truncate) vs mid-log
  // corruption (fail closed) by scanning every later block boundary for
  // a valid fragment.
  bool torn = false;
  auto damaged = [&](uint64_t off) {
    uint64_t block_index = (off - kWalMagicSize) / kWalBlockSize;
    for (uint64_t b = kWalMagicSize + (block_index + 1) * kWalBlockSize;
         b < data.size(); b += kWalBlockSize) {
      if (ValidFragmentAt(data, b)) FailClosed(path, off);
    }
    torn = true;
  };

  uint64_t pos = kWalMagicSize;
  result.valid_bytes = pos;
  std::vector<uint8_t> record;   // Reassembly buffer for FIRST..LAST.
  bool in_record = false;        // Saw FIRST, awaiting MIDDLE/LAST.

  while (pos < data.size() && !torn) {
    uint64_t block_end = kWalMagicSize +
                         (((pos - kWalMagicSize) / kWalBlockSize) + 1) *
                             kWalBlockSize;
    uint64_t limit = std::min<uint64_t>(block_end, data.size());
    if (pos + kWalHeaderSize > limit) {
      // Tail of a block too small for a header: must be zero padding.
      bool all_zero = true;
      for (uint64_t i = pos; i < limit; ++i) all_zero &= data[i] == 0;
      if (!all_zero) {
        damaged(pos);
        break;
      }
      if (limit < block_end) {
        torn = true;  // File ends inside the padding: clean torn tail.
        break;
      }
      pos = block_end;
      continue;
    }

    WalFragmentHeader h = ParseHeader(data.data() + pos);
    if (h.type == kWalPadding) {
      // Explicit padding fragment: the rest of the block must be zeros.
      bool all_zero = true;
      for (uint64_t i = pos; i < limit; ++i) all_zero &= data[i] == 0;
      if (!all_zero) {
        damaged(pos);
        break;
      }
      if (limit < block_end) {
        torn = true;
        break;
      }
      pos = block_end;
      continue;
    }

    if (!ValidFragmentAt(data, pos)) {
      damaged(pos);
      break;
    }

    const uint8_t* payload = data.data() + pos + kWalHeaderSize;
    uint64_t frag_end = pos + kWalHeaderSize + h.length;
    switch (h.type) {
      case kWalFull:
        if (in_record) {
          damaged(pos);  // FIRST without LAST, then FULL: framing break.
          break;
        }
        on_record(std::span<const uint8_t>(payload, h.length));
        ++result.records;
        result.valid_bytes = frag_end;
        break;
      case kWalFirst:
        if (in_record) {
          damaged(pos);
          break;
        }
        in_record = true;
        record.assign(payload, payload + h.length);
        break;
      case kWalMiddle:
        if (!in_record) {
          damaged(pos);
          break;
        }
        record.insert(record.end(), payload, payload + h.length);
        break;
      case kWalLast:
        if (!in_record) {
          damaged(pos);
          break;
        }
        record.insert(record.end(), payload, payload + h.length);
        in_record = false;
        on_record(std::span<const uint8_t>(record.data(), record.size()));
        ++result.records;
        result.valid_bytes = frag_end;
        break;
      default:
        damaged(pos);
        break;
    }
    if (torn) break;
    pos = frag_end;
  }

  // A record still open at end of parse (FIRST without LAST) is an
  // in-flight append torn by a crash; its fragments sit beyond
  // valid_bytes and are truncated with the tail. Trailing zero padding
  // alone does not count as a tear.
  result.tail_truncated = torn || in_record;
  return result;
}

std::unique_ptr<WalWriter> WalWriter::Open(const std::string& path,
                                           uint64_t resume_at) {
  auto w = std::unique_ptr<WalWriter>(new WalWriter());
  w->path_ = path;
  if (resume_at < kWalMagicSize) {
    w->file_ = std::fopen(path.c_str(), "wb");
    if (w->file_ == nullptr) {
      throw WalError("wal: cannot create '" + path +
                     "': " + std::strerror(errno));
    }
    w->PhysicalWrite(reinterpret_cast<const uint8_t*>(kWalMagic),
                     kWalMagicSize);
    w->pos_ = kWalMagicSize;
    w->Flush(false);
    return w;
  }
  // Truncate away any torn tail before appending; stale fragments beyond
  // the resume point must never become parseable again.
  std::error_code ec;
  std::filesystem::resize_file(path, resume_at, ec);
  if (ec) {
    throw WalError("wal: cannot truncate '" + path + "' to " +
                   std::to_string(resume_at) + " bytes: " + ec.message());
  }
  w->file_ = std::fopen(path.c_str(), "r+b");
  if (w->file_ == nullptr) {
    throw WalError("wal: cannot open '" + path +
                   "': " + std::strerror(errno));
  }
  if (std::fseek(w->file_, 0, SEEK_END) != 0) {
    throw WalError("wal: cannot seek in '" + path + "'");
  }
  w->pos_ = resume_at;
  return w;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void WalWriter::PhysicalWrite(const uint8_t* data, size_t n) {
  if (written_ + n > crash_after_) {
    // Fault injection: land exactly crash_after_ bytes, then die. The
    // partial prefix is flushed so the "disk" state is a true torn write.
    size_t partial = static_cast<size_t>(crash_after_ - written_);
    if (partial > 0) std::fwrite(data, 1, partial, file_);
    std::fflush(file_);
    written_ = crash_after_;
    if (on_crash_) {
      on_crash_();
    } else {
#ifdef SIGKILL
      std::raise(SIGKILL);
#else
      std::abort();
#endif
    }
    throw WalError("wal: fault-injection crash point reached");
  }
  if (n > 0 && std::fwrite(data, 1, n, file_) != n) {
    throw WalError("wal: write failed for '" + path_ +
                   "': " + std::strerror(errno));
  }
  written_ += n;
}

void WalWriter::AppendRecord(std::span<const uint8_t> payload) {
  static constexpr uint8_t kZeros[kWalHeaderSize] = {};
  size_t off = 0;
  bool first = true;
  for (;;) {
    uint64_t block_off = (pos_ - kWalMagicSize) % kWalBlockSize;
    uint64_t room = kWalBlockSize - block_off;
    if (room < kWalHeaderSize) {
      // Block tail too small for a header: zero-fill and start the next
      // block (replay requires these bytes to be zero).
      PhysicalWrite(kZeros, static_cast<size_t>(room));
      pos_ += room;
      continue;
    }
    uint64_t avail = room - kWalHeaderSize;
    size_t remaining = payload.size() - off;
    size_t n = static_cast<size_t>(std::min<uint64_t>(avail, remaining));
    uint8_t type;
    if (first && n == remaining) {
      type = kWalFull;
    } else if (first) {
      type = kWalFirst;
    } else if (n == remaining) {
      type = kWalLast;
    } else {
      type = kWalMiddle;
    }
    uint8_t header[kWalHeaderSize];
    uint64_t checksum =
        WalChecksum(type, payload.data() + off, static_cast<uint16_t>(n));
    uint16_t length = static_cast<uint16_t>(n);
    std::memcpy(header, &checksum, 8);
    std::memcpy(header + 8, &length, 2);
    header[10] = type;
    PhysicalWrite(header, kWalHeaderSize);
    pos_ += kWalHeaderSize;
    PhysicalWrite(payload.data() + off, n);
    pos_ += n;
    off += n;
    first = false;
    if (type == kWalFull || type == kWalLast) break;
  }
}

void WalWriter::Flush(bool sync) {
  if (std::fflush(file_) != 0) {
    throw WalError("wal: flush failed for '" + path_ +
                   "': " + std::strerror(errno));
  }
  if (sync) {
#if defined(__unix__) || defined(__APPLE__)
    if (::fsync(fileno(file_)) != 0) {
      throw WalError("wal: fsync failed for '" + path_ +
                     "': " + std::strerror(errno));
    }
#endif
  }
}

void WalWriter::Reset() {
  Flush(false);
  std::error_code ec;
  std::filesystem::resize_file(path_, kWalMagicSize, ec);
  if (ec) {
    throw WalError("wal: cannot reset '" + path_ + "': " + ec.message());
  }
  if (std::fseek(file_, static_cast<long>(kWalMagicSize), SEEK_SET) != 0) {
    throw WalError("wal: cannot seek in '" + path_ + "'");
  }
  pos_ = kWalMagicSize;
}

void WalWriter::SetCrashAfterBytes(uint64_t total_bytes,
                                   std::function<void()> on_crash) {
  crash_after_ = total_bytes;
  on_crash_ = std::move(on_crash);
}

}  // namespace bayeslsh
