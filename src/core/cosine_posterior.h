// Bayesian posterior model for cosine similarity (paper §4.2).
//
// SRP hashes collide with probability r(x, y) = 1 − θ(x, y)/π, which lives
// in [0.5, 1] for non-negatively-similar pairs — not with probability
// cos(x, y) itself. Following the paper we place a *uniform prior on
// r ∈ [0.5, 1]* (a Beta prior would not stay conjugate on a truncated
// domain), obtain the truncated-Beta posterior
//
//     p(r | M(m, n)) ∝ r^m (1 − r)^{n−m}    on [0.5, 1],
//
// and translate every statement about the cosine similarity S through the
// monotone bijections r2c(r) = cos(π(1 − r)) and c2r(c) = 1 − arccos(c)/π:
//
//     Pr[S ≥ t | M] = [B_1(a,b) − B_{c2r(t)}(a,b)] / [B_1(a,b) − B_½(a,b)]
//     R̂ = m/n (truncated to [½, 1]),  Ŝ = r2c(R̂)
//     Pr[|S − Ŝ| < δ | M] = [B_{c2r(Ŝ+δ)} − B_{c2r(Ŝ−δ)}] / [B_1 − B_½]
//
// with a = m + 1, b = n − m + 1. To avoid catastrophic cancellation when
// m ≪ n (the numerator and denominator are both tiny tail masses), all
// ratios are evaluated in the mirrored parameterization
// 1 − I_x(a, b) = I_{1−x}(b, a).

#ifndef BAYESLSH_CORE_COSINE_POSTERIOR_H_
#define BAYESLSH_CORE_COSINE_POSTERIOR_H_

namespace bayeslsh {

class CosinePosterior {
 public:
  // threshold is a cosine similarity in (0, 1).
  explicit CosinePosterior(double threshold);

  double threshold() const { return threshold_; }

  // Pr[S >= threshold | m of n hashes matched]. Monotone non-decreasing
  // in m for fixed n.
  double ProbAboveThreshold(int m, int n) const;

  // MAP estimate of the cosine similarity: r2c(clamp(m/n, 1/2, 1)).
  double Estimate(int m, int n) const;

  // Pr[|S - Estimate(m, n)| < delta | m of n matched].
  double Concentration(int m, int n, double delta) const;

 private:
  // Posterior mass of r in [rlo, rhi] (clamped to [0.5, 1]), i.e.
  // normalized by the prior-truncated denominator.
  double PosteriorMassR(int m, int n, double rlo, double rhi) const;

  double threshold_;
  double threshold_r_;  // c2r(threshold).
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_COSINE_POSTERIOR_H_
