// Explicit instantiations of the BayesLSH engines for the built-in
// (posterior model, signature store) combinations. The template definitions
// live in core/bayes_lsh_impl.h so that other modules (e.g. kernel/) can
// instantiate the engines for their own stores.

#include "core/bayes_lsh_impl.h"

#include "lsh/icws_hasher.h"

namespace bayeslsh {

template std::vector<ScoredPair>
BayesLshVerify<JaccardPosterior, IntSignatureStore>(
    const JaccardPosterior&, IntSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, const BayesLshParams&,
    VerifyStats*);
template std::vector<ScoredPair>
BayesLshVerify<CosinePosterior, BitSignatureStore>(
    const CosinePosterior&, BitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, const BayesLshParams&,
    VerifyStats*);
template std::vector<ScoredPair>
BayesLshLiteVerify<JaccardPosterior, IntSignatureStore>(
    const JaccardPosterior&, IntSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, uint32_t,
    const std::function<double(uint32_t, uint32_t)>&, double,
    const BayesLshParams&, VerifyStats*);
template std::vector<ScoredPair>
BayesLshLiteVerify<CosinePosterior, BitSignatureStore>(
    const CosinePosterior&, BitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, uint32_t,
    const std::function<double(uint32_t, uint32_t)>&, double,
    const BayesLshParams&, VerifyStats*);
template std::vector<ScoredPair>
BayesLshVerify<BbitMinwisePosterior, BbitSignatureStore>(
    const BbitMinwisePosterior&, BbitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, const BayesLshParams&,
    VerifyStats*);
template std::vector<ScoredPair>
BayesLshLiteVerify<BbitMinwisePosterior, BbitSignatureStore>(
    const BbitMinwisePosterior&, BbitSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, uint32_t,
    const std::function<double(uint32_t, uint32_t)>&, double,
    const BayesLshParams&, VerifyStats*);
// Weighted Jaccard rides the plain Jaccard posterior (the ICWS collision
// probability is exactly J_w) over the ICWS store.
template std::vector<ScoredPair>
BayesLshVerify<JaccardPosterior, IcwsSignatureStore>(
    const JaccardPosterior&, IcwsSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, const BayesLshParams&,
    VerifyStats*);
template std::vector<ScoredPair>
BayesLshLiteVerify<JaccardPosterior, IcwsSignatureStore>(
    const JaccardPosterior&, IcwsSignatureStore*,
    const std::vector<std::pair<uint32_t, uint32_t>>&, uint32_t,
    const std::function<double(uint32_t, uint32_t)>&, double,
    const BayesLshParams&, VerifyStats*);

}  // namespace bayeslsh
