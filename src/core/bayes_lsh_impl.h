// Template definitions for the BayesLSH / BayesLSH-Lite engines declared
// in core/bayes_lsh.h.
//
// The engines are generic over (PosteriorModel, Store); translation units
// that pair them with a new store type include this header and add an
// explicit instantiation (see core/bayes_lsh.cc for the built-in sparse
// combinations and kernel/kernel_search.cc for the KLSH one). Keeping the
// definitions out of core/bayes_lsh.h keeps rebuilds of the public header
// cheap and the instantiation set explicit.

#ifndef BAYESLSH_CORE_BAYES_LSH_IMPL_H_
#define BAYESLSH_CORE_BAYES_LSH_IMPL_H_

#include <cassert>

#include "core/bayes_lsh.h"

namespace bayeslsh {
namespace internal {

// Records a pair's lifetime into the Fig. 4 survival curve: the pair was
// alive for rounds [0, pruned_at_round). Accepted pairs pass
// pruned_at_round = total_rounds + 1 so they count as alive everywhere.
inline void RecordSurvival(std::vector<uint64_t>* curve,
                           uint32_t pruned_at_round) {
  for (uint32_t r = 0; r < curve->size() && r < pruned_at_round; ++r) {
    ++(*curve)[r];
  }
}

}  // namespace internal

template <typename Model, typename Store>
std::vector<ScoredPair> BayesLshVerify(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    const BayesLshParams& params, VerifyStats* stats) {
  assert(params.hashes_per_round > 0 &&
         params.max_hashes % params.hashes_per_round == 0);
  const uint32_t k = params.hashes_per_round;
  const uint32_t rounds = params.max_hashes / k;

  InferenceCache<Model> cache(&model, k, params.max_hashes, params.epsilon,
                              params.delta, params.gamma);
  VerifyStats local;
  local.pairs_in = pairs.size();
  local.surviving_after_round.assign(rounds + 1, 0);

  std::vector<ScoredPair> out;
  for (const auto& [a, b] : pairs) {
    uint32_t m = 0, n = 0;
    bool resolved = false;
    for (uint32_t r = 0; r < rounds; ++r) {
      m += store->MatchCount(a, b, n, n + k);
      n += k;
      local.hashes_compared += k;
      if (m < cache.MinMatches(n)) {
        ++local.pruned;
        internal::RecordSurvival(&local.surviving_after_round, r + 1);
        resolved = true;
        break;
      }
      const auto er = cache.EstimateAt(m, n);
      if (er.concentrated) {
        ++local.accepted;
        out.push_back({a, b, er.estimate});
        internal::RecordSurvival(&local.surviving_after_round, rounds + 1);
        resolved = true;
        break;
      }
    }
    if (!resolved) {
      // Hash budget exhausted: accept with the current estimate.
      ++local.forced_accepts;
      ++local.accepted;
      out.push_back({a, b, model.Estimate(static_cast<int>(m),
                                          static_cast<int>(n))});
      internal::RecordSurvival(&local.surviving_after_round, rounds + 1);
    }
  }
  local.cache = cache.stats();
  if (stats != nullptr) *stats = local;
  return out;
}

template <typename Model, typename Store>
std::vector<ScoredPair> BayesLshLiteVerify(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t max_prune_hashes,
    const std::function<double(uint32_t, uint32_t)>& exact_sim,
    double threshold, const BayesLshParams& params, VerifyStats* stats) {
  assert(params.hashes_per_round > 0 &&
         max_prune_hashes % params.hashes_per_round == 0);
  const uint32_t k = params.hashes_per_round;
  const uint32_t rounds = max_prune_hashes / k;

  InferenceCache<Model> cache(&model, k, max_prune_hashes, params.epsilon,
                              /*delta=*/params.delta, /*gamma=*/params.gamma);
  VerifyStats local;
  local.pairs_in = pairs.size();
  local.surviving_after_round.assign(rounds + 1, 0);

  std::vector<ScoredPair> out;
  for (const auto& [a, b] : pairs) {
    uint32_t m = 0, n = 0;
    bool pruned = false;
    for (uint32_t r = 0; r < rounds; ++r) {
      m += store->MatchCount(a, b, n, n + k);
      n += k;
      local.hashes_compared += k;
      if (m < cache.MinMatches(n)) {
        ++local.pruned;
        internal::RecordSurvival(&local.surviving_after_round, r + 1);
        pruned = true;
        break;
      }
    }
    if (pruned) continue;
    internal::RecordSurvival(&local.surviving_after_round, rounds + 1);
    ++local.exact_computed;
    const double s = exact_sim(a, b);
    if (s >= threshold) {
      ++local.accepted;
      out.push_back({a, b, s});
    }
  }
  local.cache = cache.stats();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_BAYES_LSH_IMPL_H_
