// Template definitions for the BayesLSH / BayesLSH-Lite engines declared
// in core/bayes_lsh.h.
//
// The engines are generic over (PosteriorModel, Store); translation units
// that pair them with a new store type include this header and add an
// explicit instantiation (see core/bayes_lsh.cc for the built-in sparse
// combinations and kernel/kernel_search.cc for the KLSH one). Keeping the
// definitions out of core/bayes_lsh.h keeps rebuilds of the public header
// cheap and the instantiation set explicit.
//
// The per-pair loops live in internal::BayesVerifyPairRange /
// internal::LiteVerifyPairRange, generic over a `match(a, b, from, to)`
// callable, so the sequential engines here and the sharded parallel
// drivers in core/parallel_verify.h run literally the same verification
// code — which is what makes the multi-threaded output bit-identical.

#ifndef BAYESLSH_CORE_BAYES_LSH_IMPL_H_
#define BAYESLSH_CORE_BAYES_LSH_IMPL_H_

#include <cassert>

#include "core/bayes_lsh.h"

namespace bayeslsh {
namespace internal {

// Records a pair's lifetime into the Fig. 4 survival curve: the pair was
// alive for rounds [0, pruned_at_round). Accepted pairs pass
// pruned_at_round = total_rounds + 1 so they count as alive everywhere.
inline void RecordSurvival(std::vector<uint64_t>* curve,
                           uint32_t pruned_at_round) {
  for (uint32_t r = 0; r < curve->size() && r < pruned_at_round; ++r) {
    ++(*curve)[r];
  }
}

// Algorithm 1's inner loop over pairs [begin, end). `stats` must arrive
// with surviving_after_round sized rounds + 1; pairs_in is not touched.
template <typename Model, typename Match>
void BayesVerifyPairRange(
    const Model& model, InferenceCache<Model>& cache, const Match& match,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs, size_t begin,
    size_t end, std::vector<ScoredPair>* out, VerifyStats* stats) {
  const uint32_t k = cache.hashes_per_round();
  const uint32_t rounds = cache.max_hashes() / k;
  for (size_t idx = begin; idx < end; ++idx) {
    const auto& [a, b] = pairs[idx];
    uint32_t m = 0, n = 0;
    bool resolved = false;
    for (uint32_t r = 0; r < rounds; ++r) {
      m += match(a, b, n, n + k);
      n += k;
      stats->hashes_compared += k;
      if (m < cache.MinMatches(n)) {
        ++stats->pruned;
        RecordSurvival(&stats->surviving_after_round, r + 1);
        resolved = true;
        break;
      }
      const auto er = cache.EstimateAt(m, n);
      if (er.concentrated) {
        ++stats->accepted;
        out->push_back({a, b, er.estimate});
        RecordSurvival(&stats->surviving_after_round, rounds + 1);
        resolved = true;
        break;
      }
    }
    if (!resolved) {
      // Hash budget exhausted: accept with the current estimate.
      ++stats->forced_accepts;
      ++stats->accepted;
      out->push_back({a, b, model.Estimate(static_cast<int>(m),
                                           static_cast<int>(n))});
      RecordSurvival(&stats->surviving_after_round, rounds + 1);
    }
  }
}

// Algorithm 2's inner loop over pairs [begin, end).
template <typename Model, typename Match, typename ExactFn>
void LiteVerifyPairRange(
    InferenceCache<Model>& cache, const Match& match, const ExactFn& exact_sim,
    double threshold, const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    size_t begin, size_t end, std::vector<ScoredPair>* out,
    VerifyStats* stats) {
  const uint32_t k = cache.hashes_per_round();
  const uint32_t rounds = cache.max_hashes() / k;
  for (size_t idx = begin; idx < end; ++idx) {
    const auto& [a, b] = pairs[idx];
    uint32_t m = 0, n = 0;
    bool pruned = false;
    for (uint32_t r = 0; r < rounds; ++r) {
      m += match(a, b, n, n + k);
      n += k;
      stats->hashes_compared += k;
      if (m < cache.MinMatches(n)) {
        ++stats->pruned;
        RecordSurvival(&stats->surviving_after_round, r + 1);
        pruned = true;
        break;
      }
    }
    if (pruned) continue;
    RecordSurvival(&stats->surviving_after_round, rounds + 1);
    ++stats->exact_computed;
    const double s = exact_sim(a, b);
    if (s >= threshold) {
      ++stats->accepted;
      out->push_back({a, b, s});
    }
  }
}

}  // namespace internal

template <typename Model, typename Store>
std::vector<ScoredPair> BayesLshVerify(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    const BayesLshParams& params, VerifyStats* stats) {
  assert(params.hashes_per_round > 0 &&
         params.max_hashes % params.hashes_per_round == 0);
  const uint32_t rounds = params.max_hashes / params.hashes_per_round;

  InferenceCache<Model> cache(&model, params.hashes_per_round,
                              params.max_hashes, params.epsilon, params.delta,
                              params.gamma);
  VerifyStats local;
  local.pairs_in = pairs.size();
  local.surviving_after_round.assign(rounds + 1, 0);

  std::vector<ScoredPair> out;
  internal::BayesVerifyPairRange(
      model, cache,
      [store](uint32_t a, uint32_t b, uint32_t from, uint32_t to) {
        return store->MatchCount(a, b, from, to);
      },
      pairs, 0, pairs.size(), &out, &local);
  local.cache = cache.stats();
  if (stats != nullptr) *stats = local;
  return out;
}

template <typename Model, typename Store>
std::vector<ScoredPair> BayesLshLiteVerify(
    const Model& model, Store* store,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t max_prune_hashes,
    const std::function<double(uint32_t, uint32_t)>& exact_sim,
    double threshold, const BayesLshParams& params, VerifyStats* stats) {
  assert(params.hashes_per_round > 0 &&
         max_prune_hashes % params.hashes_per_round == 0);
  const uint32_t rounds = max_prune_hashes / params.hashes_per_round;

  InferenceCache<Model> cache(&model, params.hashes_per_round,
                              max_prune_hashes, params.epsilon,
                              /*delta=*/params.delta, /*gamma=*/params.gamma);
  VerifyStats local;
  local.pairs_in = pairs.size();
  local.surviving_after_round.assign(rounds + 1, 0);

  std::vector<ScoredPair> out;
  internal::LiteVerifyPairRange(
      cache,
      [store](uint32_t a, uint32_t b, uint32_t from, uint32_t to) {
        return store->MatchCount(a, b, from, to);
      },
      exact_sim, threshold, pairs, 0, pairs.size(), &out, &local);
  local.cache = cache.stats();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_BAYES_LSH_IMPL_H_
