// Bayesian posterior model for Jaccard similarity observed through b-bit
// minwise hashes (lsh/bbit_minwise.h).
//
// A b-bit hash pair collides with probability
//
//     u(S) = c + (1 - c) S,    c = 2^-b,
//
// so — exactly as with the cosine model, where the observable collision
// rate r lives on [0.5, 1] rather than being the similarity itself — the
// binomial likelihood is in terms of u ∈ [c, 1], not S. Following the
// paper's §4.2 recipe we place a uniform prior on the observable u over
// [c, 1] (equivalently, a uniform prior on S: the map is affine), obtain
// the truncated-Beta posterior
//
//     p(u | M(m, n)) ∝ u^m (1 - u)^{n-m}    on [c, 1],
//
// and translate statements about S through the affine bijections
// s2u(s) = c + (1 - c)s and u2s(u) = (u - c)/(1 - c):
//
//     Pr[S ≥ t | M]  = [B_1(a,b) − B_{s2u(t)}(a,b)] / [B_1(a,b) − B_c(a,b)]
//     Û = clamp(m/n, c, 1),  Ŝ = u2s(Û)
//     Pr[|S − Ŝ| < δ | M] = [B_{s2u(Ŝ+δ)} − B_{s2u(Ŝ−δ)}] / [B_1 − B_c]
//
// with a = m + 1, b = n − m + 1. At b = 32 the floor c = 2^-32 is below
// the resolution of any feasible hash count and the model coincides with
// JaccardPosterior under the uniform prior (tested). At b = 1 the floor is
// 0.5 — structurally identical to the cosine model's truncation.
//
// This class satisfies the PosteriorModel concept consumed by the BayesLSH
// engine (see core/bayes_lsh.h).

#ifndef BAYESLSH_CORE_BBIT_POSTERIOR_H_
#define BAYESLSH_CORE_BBIT_POSTERIOR_H_

#include <cstdint>

namespace bayeslsh {

class BbitMinwisePosterior {
 public:
  // threshold is a Jaccard similarity in (0, 1); bits_per_hash must satisfy
  // IsValidBbitWidth.
  BbitMinwisePosterior(double threshold, uint32_t bits_per_hash);

  double threshold() const { return threshold_; }
  uint32_t bits_per_hash() const { return bits_per_hash_; }

  // The chance-collision floor c = 2^-b.
  double collision_floor() const { return floor_; }

  // Pr[S >= threshold | m of n hashes matched]. Monotone non-decreasing in
  // m for fixed n (the inference cache's binary search relies on this).
  double ProbAboveThreshold(int m, int n) const;

  // MAP estimate of the Jaccard similarity: u2s(clamp(m/n, c, 1)).
  double Estimate(int m, int n) const;

  // Pr[|S - Estimate(m, n)| < delta | m of n matched].
  double Concentration(int m, int n, double delta) const;

 private:
  // Posterior mass of u in [ulo, uhi] (clamped to [c, 1]), normalized by
  // the prior-truncated denominator.
  double PosteriorMassU(int m, int n, double ulo, double uhi) const;

  double SToU(double s) const { return floor_ + (1.0 - floor_) * s; }
  double UToS(double u) const { return (u - floor_) / (1.0 - floor_); }

  double threshold_;
  uint32_t bits_per_hash_;
  double floor_;        // c = 2^-b.
  double threshold_u_;  // s2u(threshold).
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_BBIT_POSTERIOR_H_
