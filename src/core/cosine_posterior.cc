#include "core/cosine_posterior.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lsh/srp_hasher.h"
#include "stats/special_functions.h"

namespace bayeslsh {

CosinePosterior::CosinePosterior(double threshold)
    : threshold_(threshold), threshold_r_(CosineToSrpR(threshold)) {
  assert(threshold > 0.0 && threshold < 1.0);
}

double CosinePosterior::PosteriorMassR(int m, int n, double rlo,
                                       double rhi) const {
  rlo = std::max(rlo, 0.5);
  rhi = std::min(rhi, 1.0);
  if (rlo >= rhi) return 0.0;
  const double a = m + 1.0;
  const double b = n - m + 1.0;
  // Mirrored evaluation: I_x(a, b) = 1 - I_{1-x}(b, a). The masses of
  // interest all hug x = 1, where the mirrored form is the numerically
  // stable one (no 1 - (1 - tiny) cancellation).
  const double upper_tail_lo = RegularizedIncompleteBeta(b, a, 1.0 - rlo);
  const double upper_tail_hi = RegularizedIncompleteBeta(b, a, 1.0 - rhi);
  const double denom = RegularizedIncompleteBeta(b, a, 0.5);
  if (denom <= 0.0) {
    // The whole posterior mass sits below r = 0.5 to machine precision
    // (m ≪ n); treat the truncated posterior as a point mass at 0.5.
    return rlo <= 0.5 && rhi >= 0.5 ? 1.0 : 0.0;
  }
  return std::clamp((upper_tail_lo - upper_tail_hi) / denom, 0.0, 1.0);
}

double CosinePosterior::ProbAboveThreshold(int m, int n) const {
  assert(m >= 0 && m <= n);
  return PosteriorMassR(m, n, threshold_r_, 1.0);
}

double CosinePosterior::Estimate(int m, int n) const {
  assert(m >= 0 && m <= n && n > 0);
  const double r_hat =
      std::clamp(static_cast<double>(m) / n, 0.5, 1.0);
  return SrpRToCosine(r_hat);
}

double CosinePosterior::Concentration(int m, int n, double delta) const {
  assert(m >= 0 && m <= n && n > 0);
  assert(delta > 0.0);
  const double s_hat = Estimate(m, n);
  const double s_lo = s_hat - delta;
  const double s_hi = s_hat + delta;
  // c2r is monotone; clamp the cosine interval into [-1, 1] first.
  const double r_lo = CosineToSrpR(std::max(s_lo, -1.0));
  const double r_hi = s_hi >= 1.0 ? 1.0 : CosineToSrpR(s_hi);
  return PosteriorMassR(m, n, r_lo, r_hi);
}

}  // namespace bayeslsh
