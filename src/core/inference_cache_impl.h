// Template definitions for InferenceCache (declared in
// core/inference_cache.h). Translation units pairing the cache with a new
// posterior model include this header and add an explicit instantiation
// (core/inference_cache.cc holds the built-in ones,
// euclidean/nn_search.cc the Euclidean distance model's).

#ifndef BAYESLSH_CORE_INFERENCE_CACHE_IMPL_H_
#define BAYESLSH_CORE_INFERENCE_CACHE_IMPL_H_

#include <cassert>

#include "core/inference_cache.h"

namespace bayeslsh {

template <typename Model>
InferenceCache<Model>::InferenceCache(const Model* model,
                                      uint32_t hashes_per_round,
                                      uint32_t max_hashes, double epsilon,
                                      double delta, double gamma)
    : model_(model),
      k_(hashes_per_round),
      max_hashes_(max_hashes),
      epsilon_(epsilon),
      delta_(delta),
      gamma_(gamma) {
  assert(k_ > 0 && max_hashes_ >= k_ && max_hashes_ % k_ == 0);
  const uint32_t rounds = max_hashes_ / k_;
  min_matches_.resize(rounds);
  state_.resize(rounds);
  estimate_.resize(rounds);
  for (uint32_t r = 0; r < rounds; ++r) {
    const uint32_t n = (r + 1) * k_;
    // Binary search the smallest m in [0, n] with P(m) >= epsilon;
    // P is monotone non-decreasing in m.
    uint32_t lo = 0, hi = n + 1;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (model_->ProbAboveThreshold(static_cast<int>(mid),
                                     static_cast<int>(n)) >= epsilon_) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    min_matches_[r] = lo;  // == n + 1 when even m = n fails.
    state_[r].assign(n + 1, -1);
    estimate_[r].assign(n + 1, 0.0f);
  }
}

template <typename Model>
uint32_t InferenceCache<Model>::RoundIndex(uint32_t n) const {
  assert(n >= k_ && n <= max_hashes_ && n % k_ == 0);
  return n / k_ - 1;
}

template <typename Model>
typename InferenceCache<Model>::EstimateResult
InferenceCache<Model>::EstimateAt(uint32_t m, uint32_t n) {
  const uint32_t r = RoundIndex(n);
  assert(m <= n);
  int8_t& st = state_[r][m];
  if (st < 0) {
    ++stats_.concentration_misses;
    const double est = model_->Estimate(static_cast<int>(m),
                                        static_cast<int>(n));
    const double conc = model_->Concentration(static_cast<int>(m),
                                              static_cast<int>(n), delta_);
    estimate_[r][m] = static_cast<float>(est);
    st = (conc >= 1.0 - gamma_) ? 1 : 0;
  } else {
    ++stats_.concentration_hits;
  }
  return {st == 1, estimate_[r][m]};
}

template <typename Model>
void InferenceCache<Model>::EstimateAtBatch(const uint32_t* ms,
                                            uint32_t count, uint32_t n,
                                            EstimateResult* out) {
  const uint32_t r = RoundIndex(n);
  std::vector<int8_t>& state = state_[r];
  std::vector<float>& estimate = estimate_[r];
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t m = ms[i];
    assert(m <= n);
    int8_t& st = state[m];
    if (st < 0) {
      ++stats_.concentration_misses;
      const double est = model_->Estimate(static_cast<int>(m),
                                          static_cast<int>(n));
      const double conc = model_->Concentration(static_cast<int>(m),
                                                static_cast<int>(n), delta_);
      estimate[m] = static_cast<float>(est);
      st = (conc >= 1.0 - gamma_) ? 1 : 0;
    } else {
      ++stats_.concentration_hits;
    }
    out[i] = {st == 1, estimate[m]};
  }
}

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_INFERENCE_CACHE_IMPL_H_
