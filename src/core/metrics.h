// Output-quality metrics: recall against an exact ground truth (paper
// Table 3) and similarity-estimate error statistics (Tables 4, 5).

#ifndef BAYESLSH_CORE_METRICS_H_
#define BAYESLSH_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "sim/brute_force.h"
#include "sim/similarity.h"
#include "vec/dataset.h"

namespace bayeslsh {

// |output ∩ truth| / |truth|, pairs matched on (a, b) ids only.
// Returns 1.0 for an empty truth set. Both lists may be in any order.
double Recall(const std::vector<ScoredPair>& output,
              const std::vector<ScoredPair>& truth);

struct ErrorStats {
  uint64_t pairs = 0;
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
  // Fraction of output pairs whose |estimate - exact| exceeds 0.05 — the
  // paper's Table 4 metric.
  double frac_error_gt_005 = 0.0;
  // Fraction exceeding an arbitrary second level (set by caller; default
  // matches delta = 0.05 so the two coincide unless changed).
  double frac_error_gt_custom = 0.0;
};

// Compares each output pair's reported similarity against the exact
// similarity under `measure`. `custom_level` feeds frac_error_gt_custom.
ErrorStats EstimateErrors(const Dataset& data, Measure measure,
                          const std::vector<ScoredPair>& output,
                          double custom_level = 0.05);

// False-negative rate among truth pairs: 1 - Recall (convenience for the
// ε sweeps of Table 5).
double FalseNegativeRate(const std::vector<ScoredPair>& output,
                         const std::vector<ScoredPair>& truth);

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_METRICS_H_
