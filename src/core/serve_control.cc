#include "core/serve_control.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace bayeslsh {

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

TokenBucket::TokenBucket(double tokens_per_second, double burst,
                         double now_seconds)
    : rate_(tokens_per_second < 0 ? 0.0 : tokens_per_second),
      burst_(burst > 0 ? burst : std::max(rate_, 1.0)),
      tokens_(burst_),
      last_(now_seconds) {}

void TokenBucket::RefillLocked(double now_seconds) {
  if (now_seconds > last_) {
    tokens_ = std::min(burst_, tokens_ + (now_seconds - last_) * rate_);
    last_ = now_seconds;
  }
}

bool TokenBucket::TryAcquire(double now_seconds) {
  if (rate_ <= 0.0) return true;  // unlimited
  RefillLocked(now_seconds);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

double TokenBucket::tokens(double now_seconds) const {
  if (rate_ <= 0.0) return burst_;
  const_cast<TokenBucket*>(this)->RefillLocked(now_seconds);
  return tokens_;
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

AdmissionController::AdmissionController(const AdmissionConfig& cfg)
    : cfg_(cfg) {}

AdmissionController::Ticket::Ticket(Ticket&& other) noexcept
    : controller_(other.controller_) {
  other.controller_ = nullptr;
}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionController::Ticket::~Ticket() { Release(); }

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::Ticket AdmissionController::TryAdmit(
    std::string_view client, double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  // Check the cheap server-wide bound first: a slot denial must not burn
  // the client's token (the client did nothing wrong).
  if (cfg_.max_in_flight > 0 && in_flight_ >= cfg_.max_in_flight) {
    ++rejected_;
    return Ticket{};
  }
  if (cfg_.tokens_per_second > 0.0) {
    auto [it, inserted] = buckets_.try_emplace(
        std::string(client), cfg_.tokens_per_second, cfg_.burst, now_seconds);
    if (!it->second.TryAcquire(now_seconds)) {
      ++rejected_;
      return Ticket{};
    }
  }
  ++in_flight_;
  ++admitted_;
  return Ticket{this};
}

void AdmissionController::ReleaseSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
}

uint32_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::rejected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

CircuitBreaker::CircuitBreaker(const BreakerConfig& cfg) : cfg_(cfg) {
  if (cfg_.failure_threshold == 0) cfg_.failure_threshold = 1;
}

bool CircuitBreaker::AllowRequest(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_seconds - opened_at_ < cfg_.open_seconds) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = false;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;  // one probe at a time
      probe_in_flight_ = true;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = BreakerState::kClosed;
  failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // Failed probe: straight back to open with a fresh backoff.
    state_ = BreakerState::kOpen;
    opened_at_ = now_seconds;
    probe_in_flight_ = false;
    return;
  }
  if (failures_ >= cfg_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_ = now_seconds;
  }
}

void CircuitBreaker::RecordAbandoned() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
}

BreakerState CircuitBreaker::state(double now_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen &&
      now_seconds - opened_at_ >= cfg_.open_seconds) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

uint32_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

// ---------------------------------------------------------------------------
// ShardFaultInjector
// ---------------------------------------------------------------------------

ShardFaultInjector::ShardFaultInjector(uint32_t num_shards)
    : shards_(num_shards) {}

void ShardFaultInjector::FailNext(uint32_t shard, uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.at(shard).fail_next = n;
}

void ShardFaultInjector::AddLatency(uint32_t shard, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.at(shard).added_latency_seconds = seconds < 0 ? 0.0 : seconds;
}

void ShardFaultInjector::Wedge(uint32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.at(shard).wedged = true;
}

void ShardFaultInjector::Unwedge(uint32_t shard) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.at(shard).wedged = false;
  }
  cv_.notify_all();
}

void ShardFaultInjector::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : shards_) s = ShardFaults{};
  }
  cv_.notify_all();
}

void ShardFaultInjector::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void ShardFaultInjector::BeforeShardQuery(uint32_t shard) {
  double sleep_seconds = 0.0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ShardFaults& f = shards_.at(shard);
    if (f.fail_next > 0) {
      --f.fail_next;
      throw ShardFault("injected fault: shard " + std::to_string(shard));
    }
    sleep_seconds = f.added_latency_seconds;
  }
  if (sleep_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !shards_.at(shard).wedged || shutdown_; });
    if (shutdown_ && shards_.at(shard).wedged) {
      throw ShardFault("shutdown released wedged shard " +
                       std::to_string(shard));
    }
  }
}

}  // namespace bayeslsh
