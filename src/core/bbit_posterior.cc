#include "core/bbit_posterior.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lsh/bbit_minwise.h"
#include "stats/special_functions.h"

namespace bayeslsh {

BbitMinwisePosterior::BbitMinwisePosterior(double threshold,
                                           uint32_t bits_per_hash)
    : threshold_(threshold),
      bits_per_hash_(bits_per_hash),
      floor_(std::ldexp(1.0, -static_cast<int>(bits_per_hash))),
      threshold_u_(SToU(threshold)) {
  assert(threshold > 0.0 && threshold < 1.0);
  assert(IsValidBbitWidth(bits_per_hash));
}

double BbitMinwisePosterior::PosteriorMassU(int m, int n, double ulo,
                                            double uhi) const {
  ulo = std::max(ulo, floor_);
  uhi = std::min(uhi, 1.0);
  if (ulo >= uhi) return 0.0;
  const double a = m + 1.0;
  const double b = n - m + 1.0;
  // Mirrored evaluation, as in the cosine model: for high-similarity pairs
  // the mass of interest hugs u = 1, where 1 - I_x(a, b) = I_{1-x}(b, a)
  // avoids the 1 - (1 - tiny) cancellation.
  const double upper_tail_lo = RegularizedIncompleteBeta(b, a, 1.0 - ulo);
  const double upper_tail_hi = RegularizedIncompleteBeta(b, a, 1.0 - uhi);
  const double denom = RegularizedIncompleteBeta(b, a, 1.0 - floor_);
  if (denom <= 0.0) {
    // The whole posterior mass sits below u = c to machine precision
    // (m ≪ n at a wide floor); treat the truncated posterior as a point
    // mass at c.
    return ulo <= floor_ && uhi >= floor_ ? 1.0 : 0.0;
  }
  return std::clamp((upper_tail_lo - upper_tail_hi) / denom, 0.0, 1.0);
}

double BbitMinwisePosterior::ProbAboveThreshold(int m, int n) const {
  assert(m >= 0 && m <= n);
  return PosteriorMassU(m, n, threshold_u_, 1.0);
}

double BbitMinwisePosterior::Estimate(int m, int n) const {
  assert(m >= 0 && m <= n && n > 0);
  const double u_hat =
      std::clamp(static_cast<double>(m) / n, floor_, 1.0);
  return UToS(u_hat);
}

double BbitMinwisePosterior::Concentration(int m, int n, double delta) const {
  assert(m >= 0 && m <= n && n > 0);
  assert(delta > 0.0);
  const double s_hat = Estimate(m, n);
  // s2u is affine and monotone; clamp the similarity interval into [0, 1]
  // first so the u interval stays inside the posterior's support.
  const double u_lo = SToU(std::max(s_hat - delta, 0.0));
  const double u_hi = SToU(std::min(s_hat + delta, 1.0));
  return PosteriorMassU(m, n, u_lo, u_hi);
}

}  // namespace bayeslsh
