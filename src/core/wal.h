// Write-ahead log for the dynamic index's durable write path
// (docs/FORMATS.md, "Write-ahead log"): every Add/Remove is appended to
// the log and flushed before it is acknowledged, so a process killed at
// any instant — including mid-append — recovers on reload to exactly the
// acknowledged mutation prefix (manifest checkpoint + log replay).
//
// Format (magic BLSHWL1E): after the 8-byte magic the file is a sequence
// of fixed-size blocks; records are chunked into per-block fragments
// (FULL / FIRST / MIDDLE / LAST — the LevelDB log layout), each fragment
// carrying its own Mix64 checksum over (type, length, payload). Chunking
// bounds the damage of a torn write to one block, and the per-fragment
// checksum makes every byte of damage detectable.
//
// Torn-write vs. corruption policy (the load-bearing distinction):
//
//   * Replay stops at the first fragment that fails its checksum (or
//     violates framing). If NO later block boundary holds a valid
//     fragment, the damage is a torn tail — the in-flight record of a
//     mid-append crash, never acknowledged — and replay reports the valid
//     prefix for the writer to truncate to.
//   * If any later block boundary DOES hold a valid fragment, there is
//     acknowledged data beyond the damage: replaying the prefix would
//     silently drop acknowledged writes, so replay fails closed with
//     WalError (the CLI maps it to exit 2, one diagnostic).
//
// A flipped byte in the final partial block is indistinguishable from a
// torn write and is truncated with the tail; everything older is fail
// closed. Both behaviours are asserted by tests/wal_test.cc.
//
// Concurrency: a WalWriter is not internally synchronized — DynamicIndex
// appends under its exclusive mutation lock, which already serializes
// writers. Replay happens before serving starts.

#ifndef BAYESLSH_CORE_WAL_H_
#define BAYESLSH_CORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "vec/io.h"

namespace bayeslsh {

// Raised on log corruption that cannot be attributed to a torn tail, and
// on I/O failures of the log file itself.
class WalError : public IoError {
 public:
  using IoError::IoError;
};

// Fragments per block; a record larger than one block spans several.
inline constexpr uint32_t kWalBlockSize = 4096;

// Fragment header: u64 checksum, u16 payload length, u8 type.
inline constexpr uint32_t kWalHeaderSize = 11;

// What a replay recovered. valid_bytes is the file prefix ending after
// the last complete record (the offset the writer resumes at);
// tail_truncated reports that bytes beyond it were discarded as a torn
// tail.
struct WalReplayResult {
  uint64_t records = 0;
  uint64_t valid_bytes = 0;
  bool tail_truncated = false;
};

// Replays every complete record of the log at `path` in append order,
// invoking on_record per record. A missing or shorter-than-magic file
// replays as empty (valid_bytes = 0: the writer recreates it). Throws
// WalError on a wrong magic or on mid-log corruption (see the policy
// above); exceptions from on_record propagate.
WalReplayResult ReplayWal(
    const std::string& path,
    const std::function<void(std::span<const uint8_t>)>& on_record);

// Appender. Records become durable in acknowledgment order: AppendRecord
// buffers fragments into the OS file, Flush() pushes them to the kernel
// (surviving any process death) and optionally fsyncs (surviving power
// loss). Callers acknowledge a mutation only after Flush returns.
class WalWriter {
 public:
  // Opens `path` for appending at resume_at — a prior ReplayWal's
  // valid_bytes. resume_at < 8 (missing/fresh/headerless file) recreates
  // the log from scratch; otherwise the file is first truncated to
  // resume_at, repairing any torn tail so stale fragments can never
  // resurface in a later replay. Throws WalError when the file cannot be
  // opened or repaired.
  static std::unique_ptr<WalWriter> Open(const std::string& path,
                                         uint64_t resume_at);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one record (any size; chunked into fragments). The record is
  // NOT durable until the next Flush.
  void AppendRecord(std::span<const uint8_t> payload);

  // Flushes buffered fragments to the OS — after this, the appended
  // records survive a SIGKILL of this process. sync additionally fsyncs,
  // extending the guarantee to machine crashes at the cost of a device
  // round trip per acknowledged mutation.
  void Flush(bool sync);

  // Truncates the log back to the bare magic header — called after the
  // state it describes has been checkpointed (DynamicIndex::SaveFile),
  // which supersedes every logged record.
  void Reset();

  // Current end of the log in bytes (magic + fragments written).
  uint64_t size_bytes() const { return pos_; }

  // Crash-harness fault injection: once `total_bytes` bytes have been
  // physically written over this writer's lifetime, the next write stops
  // exactly at that boundary — a genuine torn write at byte granularity —
  // flushes the partial prefix, and invokes on_crash (default: SIGKILL
  // the process). If on_crash returns (tests), the writer throws
  // WalError instead.
  void SetCrashAfterBytes(uint64_t total_bytes,
                          std::function<void()> on_crash = {});

 private:
  WalWriter() = default;

  void PhysicalWrite(const uint8_t* data, size_t n);

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t pos_ = 0;           // Absolute offset of the next byte.
  uint64_t written_ = 0;       // Bytes physically written by this writer.
  uint64_t crash_after_ = UINT64_MAX;
  std::function<void()> on_crash_;
};

}  // namespace bayeslsh

#endif  // BAYESLSH_CORE_WAL_H_
