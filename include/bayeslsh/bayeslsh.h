// BayesLSH — Bayesian candidate pruning and similarity estimation for
// locality-sensitive hashing.
//
// Umbrella header for the public API. A minimal all-pairs search is:
//
//   #include "bayeslsh/bayeslsh.h"
//
//   bayeslsh::Dataset corpus = /* build or load */;
//   corpus = bayeslsh::L2NormalizeRows(bayeslsh::TfIdfTransform(corpus));
//
//   bayeslsh::PipelineConfig cfg;
//   cfg.measure = bayeslsh::Measure::kCosine;
//   cfg.generator = bayeslsh::GeneratorKind::kAllPairs;
//   cfg.verifier = bayeslsh::VerifierKind::kBayesLsh;
//   cfg.threshold = 0.7;
//   auto result = bayeslsh::RunPipeline(corpus, cfg);
//   // result.pairs: {a, b, estimated similarity}
//
// See the top-level README.md for build instructions and the module map,
// docs/ARCHITECTURE.md for the end-to-end design, docs/CLI.md for the
// command-line tool, docs/FORMATS.md for every on-disk format, and
// examples/ for runnable programs.
//
// ---------------------------------------------------------------------------
// Main entry points
// ---------------------------------------------------------------------------
//
/// \defgroup entrypoints Main entry points
///
/// **All-pairs search** — `RunPipeline(data, PipelineConfig)`
/// (core/pipeline.h): one-shot batch join producing every pair with
/// similarity above the threshold, combining a candidate generator
/// (AllPairs / LSH banding) with a verifier (exact, MLE, BayesLSH,
/// BayesLSH-Lite). \see PipelineConfig for measure, threshold, seed and
/// `num_threads`; results are pair-for-pair identical for every thread
/// count.
///
/// **Top-k all-pairs** — `TopKAllPairs(data, TopKConfig)`
/// (core/topk_search.h): the k most similar pairs above a floor, via
/// adaptive threshold descent over the pipeline. The
/// `TopKAllPairs(PersistentIndex&, ...)` overload warm-starts every
/// descent iteration from a prebuilt index.
///
/// **Query serving** — `QuerySearcher` (core/query_search.h): build (or
/// load) an index over a fixed collection once, then answer per-query
/// threshold / top-k searches. `QuerySearcher(const Dataset*, config)`
/// builds from scratch; `QuerySearcher(const PersistentIndex*, config)`
/// warm-starts from a built or loaded index and answers pair-for-pair
/// identically. For concurrent traffic, `Freeze()` pins the signature
/// store to an immutable lock-free serving form and `QueryBatch()`
/// shards a whole batch of queries across the worker pool — results
/// identical to a serial `Query()` loop at any thread count, safe from
/// any number of caller threads.
///
/// **Persistence** — `PersistentIndex` (core/index_io.h): `Build()` the
/// full serving state offline, `Save()/SaveFile()` it as one versioned
/// binary file (docs/FORMATS.md), `Load()/LoadFile()` it back in a single
/// I/O-bound pass. Loading throws `IndexError` on truncated, corrupt,
/// version-bumped or config-mismatched files — never a crash or a
/// partially initialized index. The `bayeslsh_cli` `index` / `query`
/// subcommands expose the same flow on the command line.
///
/// **Dynamic updates** — `DynamicIndex` (core/dynamic_index.h): LSM-style
/// layering of a mutable delta segment over the frozen base, so the
/// corpus can change while serving. `Add()`/`Remove()` mutate the delta
/// (tombstones for removals), queries merge {base, delta} minus
/// tombstones — pair-for-pair identical to a from-scratch rebuild of the
/// live corpus — and `Compact()` folds everything into a new frozen base,
/// preserving logical ids. `Save()/Load()` persist the whole state as a
/// versioned segment manifest; the CLI `add` / `remove` / `compact`
/// subcommands (and `query` on a manifest) expose the same flow.
///
/// **Sharded serving** — `ShardedIndex` (core/sharded_index.h): K
/// `DynamicIndex` shards (hash-partitioned corpus) behind a query router
/// that fans out, merges top-k across shards (identical to one unsharded
/// index when healthy), and degrades gracefully: per-query deadlines
/// return flagged partial results, per-shard circuit breakers skip dead
/// shards and probe for recovery, and `ShardFaultInjector` drives every
/// degraded path in tests. The admission-control primitives (token
/// bucket, bounded in-flight depth, `core/serve_control.h`) back the
/// CLI's long-lived `serve` front-end.
///
/// **Data** — `Dataset` / `DatasetBuilder` (vec/dataset.h) hold the CSR
/// collection; `ReadDatasetAutoFile` / `WriteDataset[Binary]File`
/// (vec/io.h) read and write the text and binary dataset formats;
/// vec/transforms.h provides tf-idf weighting and L2 normalization.

#ifndef BAYESLSH_BAYESLSH_H_
#define BAYESLSH_BAYESLSH_H_

// Substrates.
#include "common/prng.h"                 // IWYU pragma: export
#include "common/thread_pool.h"          // IWYU pragma: export
#include "common/timer.h"                // IWYU pragma: export
#include "stats/beta_distribution.h"     // IWYU pragma: export
#include "stats/binomial.h"              // IWYU pragma: export
#include "stats/special_functions.h"     // IWYU pragma: export
#include "vec/dataset.h"                 // IWYU pragma: export
#include "vec/io.h"                      // IWYU pragma: export
#include "vec/sparse_vector.h"           // IWYU pragma: export
#include "vec/transforms.h"              // IWYU pragma: export

// Similarity measures and exact joins.
#include "sim/brute_force.h"             // IWYU pragma: export
#include "sim/similarity.h"              // IWYU pragma: export

// LSH hash families and signatures.
#include "lsh/bbit_minwise.h"            // IWYU pragma: export
#include "lsh/gaussian_source.h"         // IWYU pragma: export
#include "lsh/icws_hasher.h"             // IWYU pragma: export
#include "lsh/minwise_hasher.h"          // IWYU pragma: export
#include "lsh/signature_store.h"         // IWYU pragma: export
#include "lsh/srp_hasher.h"              // IWYU pragma: export

// Kernelized similarity search (paper §6 future work).
#include "kernel/dense_matrix.h"         // IWYU pragma: export
#include "kernel/kernel_query.h"         // IWYU pragma: export
#include "kernel/kernel_search.h"        // IWYU pragma: export
#include "kernel/kernels.h"              // IWYU pragma: export
#include "kernel/klsh.h"                 // IWYU pragma: export

// Euclidean nearest-neighbour retrieval (paper §6 future work).
#include "euclidean/distance_posterior.h"  // IWYU pragma: export
#include "euclidean/nn_search.h"           // IWYU pragma: export
#include "euclidean/pstable_hasher.h"      // IWYU pragma: export

// Candidate generation.
#include "candgen/allpairs.h"            // IWYU pragma: export
#include "candgen/banding_index.h"       // IWYU pragma: export
#include "candgen/lsh_banding.h"         // IWYU pragma: export
#include "candgen/multiprobe.h"          // IWYU pragma: export
#include "candgen/ppjoin.h"              // IWYU pragma: export
#include "candgen/prefix_filter_join.h"  // IWYU pragma: export

// The BayesLSH core.
#include "core/bayes_lsh.h"              // IWYU pragma: export
#include "core/bbit_posterior.h"         // IWYU pragma: export
#include "core/classical.h"              // IWYU pragma: export
#include "core/cosine_posterior.h"       // IWYU pragma: export
#include "core/dynamic_index.h"          // IWYU pragma: export
#include "core/index_io.h"               // IWYU pragma: export
#include "core/jaccard_posterior.h"      // IWYU pragma: export
#include "core/metrics.h"                // IWYU pragma: export
#include "core/pipeline.h"               // IWYU pragma: export
#include "core/query_search.h"           // IWYU pragma: export
#include "core/serve_control.h"          // IWYU pragma: export
#include "core/sharded_index.h"          // IWYU pragma: export
#include "core/topk_search.h"            // IWYU pragma: export
#include "core/wal.h"                    // IWYU pragma: export

// Synthetic workloads.
#include "data/graph_generator.h"        // IWYU pragma: export
#include "data/paper_datasets.h"         // IWYU pragma: export
#include "data/text_generator.h"         // IWYU pragma: export

#endif  // BAYESLSH_BAYESLSH_H_
